//===- core/RegionMonitor.h - The region monitoring framework --*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution assembled: **region monitoring** (section 3)
/// decouples working-set change detection from phase detection.
///
/// On every buffer overflow the monitor:
///
///  1. attributes each sample to *every* monitored region containing it
///     (regions may overlap); samples matching no region are charged to the
///     **unmonitored code region (UCR)**;
///  2. if the UCR fraction exceeds a threshold (30% in the paper's study),
///     triggers **region formation**: hot unmonitored PCs are resolved
///     through the CodeMap to enclosing loops, which become new monitored
///     regions (working-set change handled);
///  3. feeds each region's per-instruction histogram to that region's
///     **local phase detector** (phase change handled, per region);
///  4. optionally prunes regions that have been cold for a long time
///     (a cost-reduction the paper lists as future work).
///
/// Deployment-facing events (region formed / became stable / became
/// unstable / pruned) are delivered through a callback, which is how the
/// runtime-optimizer layer patches and unpatches traces and implements
/// self-monitoring of deployed optimizations.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_CORE_REGIONMONITOR_H
#define REGMON_CORE_REGIONMONITOR_H

#include "core/Attribution.h"
#include "core/CodeMap.h"
#include "core/LocalPhaseDetector.h"
#include "core/Region.h"
#include "core/Similarity.h"
#include "obs/Instruments.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "support/Types.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace regmon::persist {
class StateCodec;
} // namespace regmon::persist

namespace regmon::core {

/// Tunable parameters of the region monitor.
struct RegionMonitorConfig {
  /// UCR sample fraction above which region formation is triggered (the
  /// paper's Fig. 6 threshold line sits at 30%).
  double UcrTriggerFraction = 0.30;
  /// Minimum UCR samples a candidate loop needs in the triggering interval
  /// before it is worth forming a region around.
  std::size_t MinRegionSamples = 16;
  /// Cap on regions formed by a single trigger.
  std::size_t MaxNewRegionsPerTrigger = 8;
  /// Cap on simultaneously monitored regions.
  std::size_t MaxRegions = 128;
  /// Sample-attribution strategy (Fig. 16 compares the two).
  AttributorKind Attribution = AttributorKind::IntervalTree;
  /// Histogram similarity metric for local phase detection, plus the
  /// engine computing it (assigning a bare SimilarityKind keeps the
  /// default incremental engine). The naive engine recomputes the moments
  /// from scratch at each interval end and is kept as the differential-
  /// test oracle; both engines are bit-identical (see
  /// support/HotpathKernels.h).
  SimilarityConfig Similarity;
  /// Per-region detector parameters.
  LocalDetectorConfig Lpd;
  /// Degraded-mode gate: intervals delivering fewer than this many
  /// samples (truncated buffers, heavy sample loss) still have their
  /// samples attributed and counted, but neither trigger region formation
  /// nor advance any phase detector -- under-sampling must read as
  /// missing evidence, not as behaviour change. 0 (the paper's
  /// configuration) disables the gate.
  std::size_t MinIntervalSamples = 0;
  /// Future-work feature: drop regions that received no samples for
  /// PruneAfterIdleIntervals consecutive intervals.
  bool PruneColdRegions = false;
  std::uint64_t PruneAfterIdleIntervals = 64;
  /// Record per-interval, per-region sample counts / r values / states for
  /// the region charts (Figs. 2, 5, 9-11). Costs memory; off by default.
  bool RecordTimelines = false;
  /// Sliding window (in non-empty intervals) over which
  /// \ref RegionMonitor::recentMissFraction is computed.
  std::size_t MissWindowIntervals = 8;
  /// Extension of the paper's "change in performance characteristics"
  /// goal: run a second per-region detector over the *miss* histograms, so
  /// a region whose cycle profile is unchanged but whose delinquent loads
  /// moved (invisible to the PC-histogram detector) still reports a local
  /// phase change. Off by default (the paper's configuration).
  bool TrackMissPhases = false;
};

/// A deployment-facing notification.
struct RegionEvent {
  enum class Kind : std::uint8_t {
    Formed,          ///< A new region entered monitoring.
    BecameStable,    ///< The region's local phase became stable.
    BecameUnstable,  ///< The region's local phase left stable.
    Pruned,          ///< The region was dropped from monitoring.
    MissPhaseChange, ///< TrackMissPhases: the miss histogram's phase
                     ///< toggled while the cycle phase did not.
  };
  Kind K = Kind::Formed;
  RegionId Id = 0;
  /// Interval index (0-based) at which the event fired.
  std::uint64_t Interval = 0;
};

/// Aggregated per-region statistics.
struct RegionStats {
  /// Intervals elapsed since the region was formed.
  std::uint64_t LifetimeIntervals = 0;
  /// Of those, intervals spent in the locally-stable state (Fig. 14).
  std::uint64_t StableIntervals = 0;
  /// Intervals in which the region received at least one sample.
  std::uint64_t ActiveIntervals = 0;
  /// Total samples attributed to the region.
  std::uint64_t TotalSamples = 0;
  /// Of those, samples flagged as D-cache miss stalls.
  std::uint64_t TotalMisses = 0;
  /// Local phase changes (Fig. 13).
  std::uint64_t PhaseChanges = 0;
  /// TrackMissPhases only: phase changes of the miss-histogram channel.
  std::uint64_t MissPhaseChanges = 0;

  /// Lifetime fraction of the region's samples stalled on D-cache misses
  /// (the paper's DPI, expressed per cycle sample).
  double missFraction() const {
    return TotalSamples == 0 ? 0.0
                             : static_cast<double>(TotalMisses) /
                                   static_cast<double>(TotalSamples);
  }

  /// Fraction of the region's lifetime spent locally stable.
  double stableFraction() const {
    return LifetimeIntervals == 0
               ? 0.0
               : static_cast<double>(StableIntervals) /
                     static_cast<double>(LifetimeIntervals);
  }
};

/// The region monitoring framework (region formation + local phase
/// detection + self-monitoring hooks).
class RegionMonitor {
public:
  using EventHandler = std::function<void(const RegionEvent &)>;

  /// Creates a monitor resolving candidate regions through \p Map (which
  /// must outlive the monitor).
  explicit RegionMonitor(const CodeMap &Map, RegionMonitorConfig Config = {});

  /// Installs \p Handler for deployment-facing events. Events fire during
  /// \ref observeInterval, after the monitor's own state is consistent.
  void setEventHandler(EventHandler Handler);

  /// Consumes one interval's sample buffer.
  void observeInterval(std::span<const Sample> Samples);

  /// Returns every region ever formed, indexed by RegionId (pruned regions
  /// included; see \ref isActive).
  std::span<const Region> regions() const { return Regions; }
  /// Returns true while \p Id is being monitored.
  bool isActive(RegionId Id) const;
  /// Returns the ids of currently monitored regions, in formation order.
  std::vector<RegionId> activeRegionIds() const;
  /// Returns the number of currently monitored regions. Allocation-free
  /// (unlike \ref activeRegionIds), for per-interval stats publication.
  std::size_t activeRegionCount() const;
  /// Returns how many currently monitored regions sit in the Stable LPD
  /// state. Allocation-free; with \ref activeRegionCount this is the
  /// all-regions-stable signal the adaptive sampling controller consumes
  /// every interval.
  std::size_t stableRegionCount() const;
  /// Returns the local phase detector of region \p Id.
  const LocalPhaseDetector &detector(RegionId Id) const;
  /// Returns aggregated statistics of region \p Id.
  const RegionStats &stats(RegionId Id) const;

  /// Returns the number of samples region \p Id received in the most
  /// recently observed interval (0 for regions formed in that interval).
  std::uint64_t lastSampleCount(RegionId Id) const;

  /// Returns the region's D-cache-miss sample fraction over the last
  /// MissWindowIntervals non-empty intervals -- the feedback signal
  /// self-monitoring uses to judge a deployed optimization (paper
  /// section 5). 0 before the region has drawn samples.
  double recentMissFraction(RegionId Id) const;

  /// One delinquent load: an instruction address and its cumulative miss
  /// sample count.
  struct DelinquentLoad {
    Addr Pc = 0;
    std::uint64_t Misses = 0;
  };

  /// Returns region \p Id's top-\p N instructions by cumulative miss
  /// samples (most delinquent first) -- what a prefetch optimizer targets.
  std::vector<DelinquentLoad> delinquentLoads(RegionId Id,
                                              std::size_t N = 4) const;

  /// TrackMissPhases only: the miss-channel detector of region \p Id.
  const LocalPhaseDetector &missDetector(RegionId Id) const;

  /// Returns the total local phase changes summed over all regions ever
  /// formed (pruned regions included) -- the per-stream scalar the
  /// multi-stream service publishes.
  std::uint64_t totalPhaseChanges() const;
  /// Returns the total samples attributed to any region, summed over all
  /// regions ever formed. Overlapping regions count a sample once each.
  std::uint64_t totalSamples() const;

  /// Returns the monitor to its freshly constructed state (no regions, no
  /// history), keeping the configuration and CodeMap. Lets a service
  /// shard reuse a monitor for a new stream without reallocating the
  /// attribution index.
  void reset();

  /// Returns the number of intervals observed.
  std::uint64_t intervals() const { return Intervals; }
  /// Returns the number of intervals discounted by the MinIntervalSamples
  /// gate (still counted in \ref intervals).
  std::uint64_t undersampledIntervals() const {
    return UndersampledIntervals;
  }
  /// Returns the number of region-formation triggers fired (Fig. 7's
  /// repeated triggers in 254.gap / 186.crafty).
  std::uint64_t formationTriggers() const { return FormationTriggers; }
  /// Returns the UCR sample fraction of the most recent interval.
  double lastUcrFraction() const;
  /// Returns the per-interval UCR fraction history (Figs. 6 and 7).
  std::span<const double> ucrHistory() const { return UcrHistory; }

  /// Per-interval sample counts of region \p Id starting at its formation
  /// interval. Requires RecordTimelines.
  std::span<const std::uint32_t> sampleTimeline(RegionId Id) const;
  /// Per-interval similarity values of region \p Id (carried forward over
  /// empty intervals, as in Figs. 10/11). Requires RecordTimelines.
  std::span<const double> rTimeline(RegionId Id) const;
  /// Per-interval local states of region \p Id. Requires RecordTimelines.
  std::span<const LocalPhaseState> stateTimeline(RegionId Id) const;

  /// Returns the configuration in use.
  const RegionMonitorConfig &config() const { return Config; }

  /// Attaches observability instruments (obs layer). \p O may be null to
  /// detach; otherwise it must outlive the monitor. The monitor records
  /// per-interval counter roll-ups and phase-lifecycle events against it;
  /// with no instruments attached the overhead is one pointer test per
  /// interval.
  void attachObservability(const obs::MonitorInstruments *O);

  /// Returns true if the configured similarity kind was out of enum and
  /// the constructor fell back to Pearson (see \ref makeSimilarity).
  bool similarityFellBack() const { return SimilarityFellBack; }

  /// Returns the number of attributed samples rejected by a region
  /// histogram's bounds check (corrupted PCs / hostile restores; see
  /// \ref InstrHistogram::tryAddSample).
  std::uint64_t outOfRegionSamples() const { return OutOfRegionSamples; }

private:
  /// Checkpointing serializes every learned field below (scratch buffers
  /// and the event handler excluded) and re-inserts active regions into
  /// the attribution index on decode (persist/StateCodec.h).
  friend class persist::StateCodec;

  void triggerFormation(std::span<const Addr> UcrPcs);
  void pruneCold();
  void emit(RegionEvent::Kind K, RegionId Id);

  const CodeMap &Map;
  RegionMonitorConfig Config;
  std::unique_ptr<Attributor> Attrib;
  /// Declared before Metric: the constructor's makeSimilarity call writes
  /// through its address, so it must be initialized first.
  bool SimilarityFellBack = false;
  std::unique_ptr<SimilarityMetric> Metric;
  EventHandler Handler;
  const obs::MonitorInstruments *Obs = nullptr;

  std::vector<Region> Regions;
  std::vector<bool> Active;
  std::vector<InstrHistogram> CurrHists;
  std::vector<InstrHistogram> CurrMissHists;
  std::vector<std::unique_ptr<LocalPhaseDetector>> Detectors;
  std::vector<std::unique_ptr<LocalPhaseDetector>> MissDetectors;
  std::vector<RegionStats> Stats;
  std::vector<std::uint64_t> LastSampledInterval;
  std::vector<std::vector<std::uint64_t>> CumulativeMisses; // per bin
  std::vector<WindowedStats> RecentMiss;

  // Optional recorded timelines, parallel to Regions.
  std::vector<std::vector<std::uint32_t>> SampleTimelines;
  std::vector<std::vector<double>> RTimelines;
  std::vector<std::vector<LocalPhaseState>> StateTimelines;

  std::vector<double> UcrHistory;
  std::uint64_t Intervals = 0;
  std::uint64_t FormationTriggers = 0;
  std::uint64_t UndersampledIntervals = 0;
  std::uint64_t OutOfRegionSamples = 0;

  /// True when interval-end similarity runs on the incremental engine:
  /// the configured engine is Incremental (anything else -- including an
  /// out-of-enum value from a hostile config -- selects naive) and the
  /// metric supports moment evaluation.
  bool IncrementalSimilarity = false;

  // Reused scratch buffers (hot path).
  std::vector<RegionId> LookupScratch;
  std::vector<Addr> UcrScratch;
  /// Incremental engine scratch, re-primed each interval: per-region
  /// cross moments sum(prev_i * curr_i) accumulated as samples land, and
  /// the stable-set base pointers they are accumulated against
  /// (re-fetched each interval -- a checkpoint restore may reallocate a
  /// detector's stable set).
  std::vector<std::uint64_t> SxyAcc;
  std::vector<std::uint64_t> MissSxyAcc;
  std::vector<const std::uint32_t *> StablePtrs;
  std::vector<const std::uint32_t *> MissStablePtrs;
};

} // namespace regmon::core

#endif // REGMON_CORE_REGIONMONITOR_H
