//===- core/LocalPhaseDetector.h - Per-region phase detection ---*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// **Local phase detection** (paper section 3.2, Fig. 12): each monitored
/// region carries its own phase detector comparing the region's
/// per-instruction sample histogram for the current interval (curr_hist)
/// against a stable reference set (prev_hist) with a similarity metric
/// (Pearson's r by default). The state machine:
///
///     Unstable      --(r >= rt)--> LessUnstable   (prev <- curr)
///     Unstable      --(r <  rt or prev empty)-->  Unstable (prev <- curr)
///     LessUnstable  --(r >= rt)--> Stable          [phase change]
///     LessUnstable  --(r <  rt)--> Unstable        (prev <- curr)
///     Stable        --(r >= rt)--> Stable          (prev frozen)
///     Stable        --(r <  rt)--> Unstable        [phase change]
///                                                  (prev <- curr)
///
/// "As long as the phase is unstable or less unstable, the stable set of
/// samples is updated to reflect the current set. Once the phase
/// stabilizes, the stable set of samples is frozen" -- so on the
/// LessUnstable -> Stable transition we adopt the current set as the frozen
/// reference (the most recent confirmation of the stable behaviour).
///
/// Intervals in which the region receives no samples do not advance the
/// machine: "the value of r returned is the same as during the last
/// interval" (the Fig. 11 discussion).
///
/// Two future-work extensions from the paper's section 5 / 3.2.2 are
/// implemented behind config flags:
///
///  * a size-adaptive threshold (188.ammp's granularity breakdown): very
///    large regions blend sub-behaviours inside one interval, depressing r
///    even when behaviour is steady, so rt is lowered logarithmically with
///    region size;
///  * pluggable cheaper similarity metrics (see Similarity.h).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_CORE_LOCALPHASEDETECTOR_H
#define REGMON_CORE_LOCALPHASEDETECTOR_H

#include "core/Similarity.h"
#include "support/Types.h"

#include <cstdint>
#include <span>
#include <vector>

namespace regmon::persist {
class StateCodec;
} // namespace regmon::persist

namespace regmon::core {

/// Phase state of one region.
enum class LocalPhaseState : std::uint8_t {
  Unstable,
  LessUnstable,
  Stable,
};

/// Returns a short human-readable name for \p S.
const char *toString(LocalPhaseState S);

/// Tunable parameters of local phase detection.
struct LocalDetectorConfig {
  /// The similarity threshold rt; the paper uses 0.8.
  double Rt = 0.8;
  /// When true, rt is reduced for large regions:
  /// rt_eff = Rt - AdaptiveSlope * log2(instrs / AdaptiveBaseInstrs),
  /// clamped to [AdaptiveMinRt, Rt]. Our design of the paper's proposed
  /// "threshold based on the size of region" (section 3.2.2).
  bool AdaptiveThreshold = false;
  double AdaptiveSlope = 0.05;
  std::size_t AdaptiveBaseInstrs = 64;
  double AdaptiveMinRt = 0.55;
  /// Degraded-mode gate: histograms carrying fewer than this many samples
  /// do not advance the state machine (Pearson's r over a handful of
  /// samples is noise, and a faulted stream must not register spurious
  /// phase changes just because an interval arrived truncated). 0 -- the
  /// paper's configuration -- disables the gate.
  std::size_t MinObserveSamples = 0;
};

/// Per-region local phase detector (one instance per monitored region).
class LocalPhaseDetector {
public:
  /// Creates a detector for a region of \p InstrCount instructions.
  /// \p Metric must outlive the detector.
  LocalPhaseDetector(std::size_t InstrCount, const SimilarityMetric &Metric,
                     LocalDetectorConfig Config = {});

  /// Consumes the region's sample histogram for one interval in which the
  /// region received at least one sample, and returns the updated state.
  LocalPhaseState observe(std::span<const std::uint32_t> CurrHist);

  /// O(1) interval end: like \ref observe, but takes the current-interval
  /// histogram's self moments from \p Curr (maintained sample by sample)
  /// and the cross moment sum(prev_i * curr_i) in \p SxyWithStable,
  /// accumulated by the caller as samples landed against the stable set
  /// returned by \ref stableSet. Bit-identical to \ref observe when the
  /// metric \ref SimilarityMetric::supportsMoments (both funnel through
  /// the same integer moments); metrics without moment support fall back
  /// to the O(bins) comparison internally, still bit-identical.
  LocalPhaseState observeMoments(const InstrHistogram &Curr,
                                 std::uint64_t SxyWithStable);

  /// Returns the current state.
  LocalPhaseState state() const { return State; }
  /// Returns the similarity value computed for the most recent non-empty
  /// interval (0 before any comparison was possible).
  double lastR() const { return LastR; }
  /// Returns the effective threshold in use (differs from Rt only with the
  /// adaptive extension enabled).
  double effectiveRt() const { return EffRt; }

  /// Returns the number of phase changes (the Fig. 12 dotted transitions:
  /// LessUnstable -> Stable and Stable -> Unstable).
  std::uint64_t phaseChanges() const { return PhaseChanges; }
  /// Returns the number of non-empty intervals observed.
  std::uint64_t observedIntervals() const { return Observed; }
  /// Returns the number of observations discounted by the
  /// MinObserveSamples gate (not counted in \ref observedIntervals).
  std::uint64_t skippedUndersampled() const { return SkippedUndersampled; }
  /// Returns true if the most recent \ref observe changed phase.
  bool lastObservationChangedPhase() const { return LastWasChange; }
  /// Returns true if the most recent \ref observe actually computed a
  /// similarity value (false when it was gated, or adopted the first
  /// stable set with nothing to compare against). Engine-independent, so
  /// metrics derived from it stay byte-stable across engines.
  bool lastObservationComparedR() const { return LastWasCompare; }
  /// Returns the state the machine held when the most recent \ref observe
  /// began (equal to \ref state when that observation held or was gated).
  /// Lets instrumentation report every state *entry* -- including
  /// Unstable -> LessUnstable, which \ref lastObservationChangedPhase
  /// deliberately does not count as a phase change.
  LocalPhaseState stateBeforeLastObserve() const { return StateBefore; }

  /// Returns the frozen stable sample set (meaningful when not Unstable).
  std::span<const std::uint32_t> stableSet() const { return PrevHist; }

private:
  /// Checkpointing serializes the state machine and the frozen stable set
  /// (persist/StateCodec.h).
  friend class persist::StateCodec;

  /// The state-machine step shared by \ref observe and
  /// \ref observeMoments. \p Total / \p SumSq are the current histogram's
  /// self moments; \p Sxy is the cross moment with the stable set, valid
  /// only when \p HaveSxy.
  LocalPhaseState advance(std::span<const std::uint32_t> CurrHist,
                          std::uint64_t Total, std::uint64_t SumSq,
                          std::uint64_t Sxy, bool HaveSxy);

  /// prev <- curr: copies the bins and re-primes the stable set's running
  /// moments in O(1) from the current histogram's.
  void adopt(std::span<const std::uint32_t> CurrHist, std::uint64_t Total,
             std::uint64_t SumSq);

  const SimilarityMetric &Metric;
  LocalDetectorConfig Config;
  double EffRt;
  std::vector<std::uint32_t> PrevHist;
  /// Running moments of PrevHist (SumX / Sxx), re-primed on every adopt so
  /// interval-end similarity never rescans the stable set.
  std::uint64_t PrevSum = 0;
  std::uint64_t PrevSumSq = 0;
  bool PrevValid = false;
  LocalPhaseState State = LocalPhaseState::Unstable;
  LocalPhaseState StateBefore = LocalPhaseState::Unstable;
  double LastR = 0;
  bool LastWasChange = false;
  bool LastWasCompare = false;
  std::uint64_t PhaseChanges = 0;
  std::uint64_t Observed = 0;
  std::uint64_t SkippedUndersampled = 0;
};

} // namespace regmon::core

#endif // REGMON_CORE_LOCALPHASEDETECTOR_H
