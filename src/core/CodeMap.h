//===- core/CodeMap.h - Region-formation code oracle ------------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface region formation uses to turn a hot program counter into a
/// candidate region. In the real system this is the region-building
/// machinery of [13]: given a hot instruction, find the enclosing loop
/// within the same procedure and emit its bounds. Some hot code defeats it
/// -- e.g. a procedure called from a loop, where the cyclic path crosses
/// procedure boundaries -- and those samples can never be claimed by any
/// region (the paper's Figs. 6/7 unmonitored-code-region pathology).
///
/// Keeping this an abstract interface keeps the monitoring core independent
/// of the execution substrate: a real deployment would implement CodeMap
/// over binary analysis of the running process.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_CORE_CODEMAP_H
#define REGMON_CORE_CODEMAP_H

#include "support/Types.h"

#include <optional>
#include <string>

namespace regmon::core {

/// A candidate region emitted by the code oracle.
struct CodeRegionInfo {
  Addr Start = 0; ///< Inclusive, instruction-aligned.
  Addr End = 0;   ///< Exclusive, instruction-aligned.
  std::string Name;
};

/// Abstract oracle from hot PCs to formable regions.
class CodeMap {
public:
  virtual ~CodeMap();

  /// Returns the innermost formable region containing \p Pc, or
  /// std::nullopt when no region can be built around it (straight-line
  /// code, or a cycle spanning procedure boundaries).
  virtual std::optional<CodeRegionInfo> regionFor(Addr Pc) const = 0;
};

} // namespace regmon::core

#endif // REGMON_CORE_CODEMAP_H
