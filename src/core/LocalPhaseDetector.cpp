//===- core/LocalPhaseDetector.cpp - Per-region phase detection -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/LocalPhaseDetector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace regmon;
using namespace regmon::core;

const char *regmon::core::toString(LocalPhaseState S) {
  switch (S) {
  case LocalPhaseState::Unstable:
    return "unstable";
  case LocalPhaseState::LessUnstable:
    return "less-unstable";
  case LocalPhaseState::Stable:
    return "stable";
  }
  return "?";
}

LocalPhaseDetector::LocalPhaseDetector(std::size_t InstrCount,
                                       const SimilarityMetric &Sim,
                                       LocalDetectorConfig Cfg)
    : Metric(Sim), Config(Cfg), PrevHist(InstrCount, 0) {
  assert(InstrCount > 0 && "region must contain instructions");
  EffRt = Config.Rt;
  if (Config.AdaptiveThreshold && InstrCount > Config.AdaptiveBaseInstrs) {
    const double SizeRatio = static_cast<double>(InstrCount) /
                             static_cast<double>(Config.AdaptiveBaseInstrs);
    EffRt = std::clamp(Config.Rt - Config.AdaptiveSlope * std::log2(SizeRatio),
                       Config.AdaptiveMinRt, Config.Rt);
  }
}

LocalPhaseState
LocalPhaseDetector::observe(std::span<const std::uint32_t> CurrHist) {
  assert(CurrHist.size() == PrevHist.size() &&
         "histogram does not match the region");
  StateBefore = State;
  if (Config.MinObserveSamples > 0) {
    std::uint64_t Total = 0;
    for (std::uint32_t Bin : CurrHist)
      Total += Bin;
    if (Total < Config.MinObserveSamples) {
      // Degraded mode: too little sample mass for r to mean anything.
      // The machine holds, exactly as it does over an empty interval.
      ++SkippedUndersampled;
      LastWasChange = false;
      return State;
    }
  }
  ++Observed;
  const LocalPhaseState Before = StateBefore;

  if (!PrevValid) {
    // First non-empty interval: nothing to compare against yet.
    std::copy(CurrHist.begin(), CurrHist.end(), PrevHist.begin());
    PrevValid = true;
    LastWasChange = false;
    return State;
  }

  LastR = Metric.compare(PrevHist, CurrHist);
  const bool Similar = LastR >= EffRt;

  switch (State) {
  case LocalPhaseState::Unstable:
    State = Similar ? LocalPhaseState::LessUnstable
                    : LocalPhaseState::Unstable;
    std::copy(CurrHist.begin(), CurrHist.end(), PrevHist.begin());
    break;

  case LocalPhaseState::LessUnstable:
    if (Similar) {
      // Entering stable: the current set becomes the frozen reference --
      // the latest confirmation of the behaviour we will hold others to.
      State = LocalPhaseState::Stable;
      std::copy(CurrHist.begin(), CurrHist.end(), PrevHist.begin());
    } else {
      State = LocalPhaseState::Unstable;
      std::copy(CurrHist.begin(), CurrHist.end(), PrevHist.begin());
    }
    break;

  case LocalPhaseState::Stable:
    if (!Similar) {
      State = LocalPhaseState::Unstable;
      std::copy(CurrHist.begin(), CurrHist.end(), PrevHist.begin());
    }
    // else: stay stable, reference stays frozen.
    break;
  }

  LastWasChange = (Before == LocalPhaseState::Stable) !=
                  (State == LocalPhaseState::Stable);
  if (LastWasChange)
    ++PhaseChanges;
  return State;
}
