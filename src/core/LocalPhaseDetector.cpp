//===- core/LocalPhaseDetector.cpp - Per-region phase detection -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/LocalPhaseDetector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace regmon;
using namespace regmon::core;

const char *regmon::core::toString(LocalPhaseState S) {
  switch (S) {
  case LocalPhaseState::Unstable:
    return "unstable";
  case LocalPhaseState::LessUnstable:
    return "less-unstable";
  case LocalPhaseState::Stable:
    return "stable";
  }
  return "?";
}

LocalPhaseDetector::LocalPhaseDetector(std::size_t InstrCount,
                                       const SimilarityMetric &Sim,
                                       LocalDetectorConfig Cfg)
    : Metric(Sim), Config(Cfg), PrevHist(InstrCount, 0) {
  assert(InstrCount > 0 && "region must contain instructions");
  EffRt = Config.Rt;
  if (Config.AdaptiveThreshold && InstrCount > Config.AdaptiveBaseInstrs) {
    const double SizeRatio = static_cast<double>(InstrCount) /
                             static_cast<double>(Config.AdaptiveBaseInstrs);
    EffRt = std::clamp(Config.Rt - Config.AdaptiveSlope * std::log2(SizeRatio),
                       Config.AdaptiveMinRt, Config.Rt);
  }
}

REGMON_PURE LocalPhaseState
LocalPhaseDetector::observe(std::span<const std::uint32_t> CurrHist) {
  // The naive (oracle) entry: the current set's self moments are
  // recomputed in one fused pass, and the cross moment -- when the metric
  // can use it -- is recomputed inside Metric.compare. Identical integer
  // sums to the incremental path, therefore identical results.
  std::uint64_t Total = 0, SumSq = 0;
  for (std::uint32_t Bin : CurrHist) {
    Total += Bin;
    SumSq += static_cast<std::uint64_t>(Bin) * Bin;
  }
  return advance(CurrHist, Total, SumSq, 0, /*HaveSxy=*/false);
}

REGMON_PURE LocalPhaseState
LocalPhaseDetector::observeMoments(const InstrHistogram &Curr,
                                   std::uint64_t SxyWithStable) {
  return advance(Curr.bins(), Curr.total(), Curr.sumOfSquares(),
                 SxyWithStable, /*HaveSxy=*/true);
}

REGMON_PURE void
LocalPhaseDetector::adopt(std::span<const std::uint32_t> CurrHist,
                               std::uint64_t Total, std::uint64_t SumSq) {
  std::copy(CurrHist.begin(), CurrHist.end(), PrevHist.begin());
  PrevSum = Total;
  PrevSumSq = SumSq;
}

REGMON_PURE LocalPhaseState
LocalPhaseDetector::advance(std::span<const std::uint32_t> CurrHist,
                            std::uint64_t Total, std::uint64_t SumSq,
                            std::uint64_t Sxy, bool HaveSxy) {
  assert(CurrHist.size() == PrevHist.size() &&
         "histogram does not match the region");
  StateBefore = State;
  if (Config.MinObserveSamples > 0 && Total < Config.MinObserveSamples) {
    // Degraded mode: too little sample mass for r to mean anything.
    // The machine holds, exactly as it does over an empty interval.
    ++SkippedUndersampled;
    LastWasChange = false;
    LastWasCompare = false;
    return State;
  }
  ++Observed;
  const LocalPhaseState Before = StateBefore;

  if (!PrevValid) {
    // First non-empty interval: nothing to compare against yet.
    adopt(CurrHist, Total, SumSq);
    PrevValid = true;
    LastWasChange = false;
    LastWasCompare = false;
    return State;
  }

  if (HaveSxy && Metric.supportsMoments()) {
    // O(1) interval end: every moment is already accumulated.
    const HistMoments M{PrevSum, Total, PrevSumSq, SumSq, Sxy};
    LastR = Metric.compareMoments(PrevHist.size(), M);
  } else {
    LastR = Metric.compare(PrevHist, CurrHist);
  }
  LastWasCompare = true;
  const bool Similar = LastR >= EffRt;

  switch (State) {
  case LocalPhaseState::Unstable:
    State = Similar ? LocalPhaseState::LessUnstable
                    : LocalPhaseState::Unstable;
    adopt(CurrHist, Total, SumSq);
    break;

  case LocalPhaseState::LessUnstable:
    if (Similar) {
      // Entering stable: the current set becomes the frozen reference --
      // the latest confirmation of the behaviour we will hold others to.
      State = LocalPhaseState::Stable;
      adopt(CurrHist, Total, SumSq);
    } else {
      State = LocalPhaseState::Unstable;
      adopt(CurrHist, Total, SumSq);
    }
    break;

  case LocalPhaseState::Stable:
    if (!Similar) {
      State = LocalPhaseState::Unstable;
      adopt(CurrHist, Total, SumSq);
    }
    // else: stay stable, reference stays frozen.
    break;
  }

  LastWasChange = (Before == LocalPhaseState::Stable) !=
                  (State == LocalPhaseState::Stable);
  if (LastWasChange)
    ++PhaseChanges;
  return State;
}
