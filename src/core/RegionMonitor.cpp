//===- core/RegionMonitor.cpp - The region monitoring framework -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace regmon;
using namespace regmon::core;

namespace {

obs::EventKind phaseEntryKind(LocalPhaseState S) {
  switch (S) {
  case LocalPhaseState::Unstable:
    return obs::EventKind::PhaseEnteredUnstable;
  case LocalPhaseState::LessUnstable:
    return obs::EventKind::PhaseEnteredLessUnstable;
  case LocalPhaseState::Stable:
    return obs::EventKind::PhaseEnteredStable;
  }
  return obs::EventKind::PhaseEnteredUnstable;
}

} // namespace

RegionMonitor::RegionMonitor(const CodeMap &CM, RegionMonitorConfig Cfg)
    : Map(CM), Config(Cfg),
      Attrib(makeAttributor(Config.Attribution)),
      Metric(makeSimilarity(Config.Similarity.Kind, &SimilarityFellBack)) {
  assert(Config.UcrTriggerFraction >= 0 && Config.UcrTriggerFraction <= 1 &&
         "UCR trigger must be a fraction");
  assert(Config.MaxRegions > 0 && "must allow at least one region");
  // An out-of-enum engine value (version skew, fuzzed config) selects the
  // naive oracle: always correct, merely slower.
  IncrementalSimilarity =
      Config.Similarity.Engine == SimilarityEngine::Incremental &&
      Metric->supportsMoments();
}

void RegionMonitor::setEventHandler(EventHandler H) {
  Handler = std::move(H);
}

void RegionMonitor::attachObservability(const obs::MonitorInstruments *O) {
  Obs = O;
  if (Obs)
    // Configure-time constant (0 = scalar, 1 = auto): identical whichever
    // engine runs, so exports stay byte-stable across engines.
    obs::setGauge(Obs->HotpathKernel,
                  static_cast<double>(hotpathKernelId()));
  if (Obs && SimilarityFellBack) {
    obs::addTo(Obs->SimilarityFallbacks);
    obs::recordEvent(Obs->Tracer, obs::EventKind::SimilarityFallback,
                     Obs->Stream, 0, Intervals);
  }
}

void RegionMonitor::emit(RegionEvent::Kind K, RegionId Id) {
  if (Obs) {
    switch (K) {
    case RegionEvent::Kind::Formed:
      obs::addTo(Obs->RegionsFormed);
      obs::recordEvent(Obs->Tracer, obs::EventKind::RegionFormed, Obs->Stream,
                       Id, Intervals);
      break;
    case RegionEvent::Kind::Pruned:
      obs::addTo(Obs->RegionsRetired);
      obs::recordEvent(Obs->Tracer, obs::EventKind::RegionRetired, Obs->Stream,
                       Id, Intervals);
      break;
    case RegionEvent::Kind::BecameStable:
    case RegionEvent::Kind::BecameUnstable:
      // The state-entry event (with its r) is recorded at the observe
      // site, which also sees the Unstable -> LessUnstable entries this
      // callback never fires for.
      obs::addTo(Obs->PhaseChanges);
      break;
    case RegionEvent::Kind::MissPhaseChange:
      obs::addTo(Obs->MissPhaseChanges);
      obs::recordEvent(Obs->Tracer, obs::EventKind::MissPhaseChange,
                       Obs->Stream, Id, Intervals,
                       MissDetectors[Id] ? MissDetectors[Id]->lastR() : 0.0);
      break;
    }
  }
  if (Handler)
    Handler(RegionEvent{K, Id, Intervals});
}

bool RegionMonitor::isActive(RegionId Id) const {
  assert(Id < Regions.size() && "unknown region");
  return Active[Id];
}

std::vector<RegionId> RegionMonitor::activeRegionIds() const {
  std::vector<RegionId> Out;
  for (RegionId Id = 0; Id < Regions.size(); ++Id)
    if (Active[Id])
      Out.push_back(Id);
  return Out;
}

std::size_t RegionMonitor::activeRegionCount() const {
  std::size_t N = 0;
  for (RegionId Id = 0; Id < Regions.size(); ++Id)
    N += Active[Id] ? 1 : 0;
  return N;
}

std::size_t RegionMonitor::stableRegionCount() const {
  std::size_t N = 0;
  for (RegionId Id = 0; Id < Regions.size(); ++Id)
    N += Active[Id] && Detectors[Id]->state() == LocalPhaseState::Stable ? 1
                                                                         : 0;
  return N;
}

std::uint64_t RegionMonitor::totalPhaseChanges() const {
  std::uint64_t N = 0;
  for (const RegionStats &S : Stats)
    N += S.PhaseChanges;
  return N;
}

std::uint64_t RegionMonitor::totalSamples() const {
  std::uint64_t N = 0;
  for (const RegionStats &S : Stats)
    N += S.TotalSamples;
  return N;
}

void RegionMonitor::reset() {
  for (RegionId Id = 0; Id < Regions.size(); ++Id)
    if (Active[Id])
      Attrib->remove(Id, Regions[Id].Start, Regions[Id].End);
  assert(Attrib->size() == 0 && "attribution index out of sync");
  Regions.clear();
  Active.clear();
  CurrHists.clear();
  CurrMissHists.clear();
  Detectors.clear();
  MissDetectors.clear();
  Stats.clear();
  LastSampledInterval.clear();
  CumulativeMisses.clear();
  RecentMiss.clear();
  SampleTimelines.clear();
  RTimelines.clear();
  StateTimelines.clear();
  UcrHistory.clear();
  Intervals = 0;
  FormationTriggers = 0;
  UndersampledIntervals = 0;
  OutOfRegionSamples = 0;
}

const LocalPhaseDetector &RegionMonitor::detector(RegionId Id) const {
  assert(Id < Detectors.size() && "unknown region");
  return *Detectors[Id];
}

const RegionStats &RegionMonitor::stats(RegionId Id) const {
  assert(Id < Stats.size() && "unknown region");
  return Stats[Id];
}

std::uint64_t RegionMonitor::lastSampleCount(RegionId Id) const {
  assert(Id < CurrHists.size() && "unknown region");
  return CurrHists[Id].total();
}

double RegionMonitor::recentMissFraction(RegionId Id) const {
  assert(Id < RecentMiss.size() && "unknown region");
  return RecentMiss[Id].mean();
}

std::vector<RegionMonitor::DelinquentLoad>
RegionMonitor::delinquentLoads(RegionId Id, std::size_t N) const {
  assert(Id < CumulativeMisses.size() && "unknown region");
  const std::vector<std::uint64_t> &Bins = CumulativeMisses[Id];
  std::vector<DelinquentLoad> All;
  for (std::size_t Bin = 0; Bin < Bins.size(); ++Bin)
    if (Bins[Bin] > 0)
      All.push_back(DelinquentLoad{
          Regions[Id].Start + static_cast<Addr>(Bin) * InstrBytes,
          Bins[Bin]});
  std::stable_sort(All.begin(), All.end(),
                   [](const DelinquentLoad &A, const DelinquentLoad &B) {
                     return A.Misses > B.Misses;
                   });
  if (All.size() > N)
    All.resize(N);
  return All;
}

const LocalPhaseDetector &RegionMonitor::missDetector(RegionId Id) const {
  assert(Config.TrackMissPhases && "miss channel is not enabled");
  assert(Id < MissDetectors.size() && "unknown region");
  return *MissDetectors[Id];
}

double RegionMonitor::lastUcrFraction() const {
  return UcrHistory.empty() ? 0.0 : UcrHistory.back();
}

std::span<const std::uint32_t>
RegionMonitor::sampleTimeline(RegionId Id) const {
  assert(Config.RecordTimelines && "timelines were not recorded");
  assert(Id < SampleTimelines.size() && "unknown region");
  return SampleTimelines[Id];
}

std::span<const double> RegionMonitor::rTimeline(RegionId Id) const {
  assert(Config.RecordTimelines && "timelines were not recorded");
  assert(Id < RTimelines.size() && "unknown region");
  return RTimelines[Id];
}

std::span<const LocalPhaseState>
RegionMonitor::stateTimeline(RegionId Id) const {
  assert(Config.RecordTimelines && "timelines were not recorded");
  assert(Id < StateTimelines.size() && "unknown region");
  return StateTimelines[Id];
}

REGMON_PURE void
RegionMonitor::observeInterval(std::span<const Sample> Samples) {
  assert(!Samples.empty() && "an interval carries a full sample buffer");

  // Fresh histograms for this interval.
  for (RegionId Id = 0; Id < Regions.size(); ++Id)
    if (Active[Id]) {
      CurrHists[Id].reset();
      CurrMissHists[Id].reset();
    }

  // Incremental engine: prime the per-region cross-moment accumulators
  // and fetch each stable set's base pointer. Pointers are re-fetched
  // every interval -- never cached across intervals -- because a
  // checkpoint restore can reallocate a detector's stable-set buffer.
  const bool Fast = IncrementalSimilarity;
  const bool FastMiss = Fast && Config.TrackMissPhases;
  if (Fast) {
    SxyAcc.assign(Regions.size(), 0);
    StablePtrs.assign(Regions.size(), nullptr);
    for (RegionId Id = 0; Id < Regions.size(); ++Id)
      if (Active[Id])
        StablePtrs[Id] = Detectors[Id]->stableSet().data();
  }
  if (FastMiss) {
    MissSxyAcc.assign(Regions.size(), 0);
    MissStablePtrs.assign(Regions.size(), nullptr);
    for (RegionId Id = 0; Id < Regions.size(); ++Id)
      if (Active[Id])
        MissStablePtrs[Id] = MissDetectors[Id]->stableSet().data();
  }

  // 1. Attribute every sample; unmatched samples belong to the UCR.
  UcrScratch.clear();
  std::uint64_t RejectedNow = 0;
  for (const Sample &S : Samples) {
    LookupScratch.clear();
    Attrib->lookup(S.Pc, LookupScratch);
    if (LookupScratch.empty()) {
      UcrScratch.push_back(S.Pc);
      continue;
    }
    for (RegionId Id : LookupScratch) {
      const std::ptrdiff_t Bin = CurrHists[Id].tryAddSampleAt(S.Pc);
      if (Bin < 0) {
        // The attribution index said the PC falls inside this region but
        // the histogram's bounds disagree -- a corrupted PC or a hostile
        // restore desynchronized the two. Count it, never write OOB.
        ++RejectedNow;
        continue;
      }
      if (Fast)
        SxyAcc[Id] += StablePtrs[Id][Bin];
      if (S.DCacheMiss) {
        if (FastMiss) {
          // Same bounds as the cycle histogram, which just accepted the
          // PC, so the miss histogram cannot reject it.
          const std::ptrdiff_t MissBin =
              CurrMissHists[Id].tryAddSampleAt(S.Pc);
          assert(MissBin >= 0 && "miss histogram disagrees on bounds");
          if (MissBin >= 0)
            MissSxyAcc[Id] +=
                MissStablePtrs[Id][static_cast<std::size_t>(MissBin)];
        } else {
          CurrMissHists[Id].addSample(S.Pc);
        }
      }
    }
  }
  OutOfRegionSamples += RejectedNow;
  const double UcrFraction = static_cast<double>(UcrScratch.size()) /
                             static_cast<double>(Samples.size());
  UcrHistory.push_back(UcrFraction);

  // Degraded mode: an interval below the sample-mass gate is evidence of
  // a faulty collector, not of the program. Its samples still count (they
  // are real), but it neither forms regions nor advances any detector.
  const bool Undersampled = Samples.size() < Config.MinIntervalSamples;
  if (Undersampled)
    ++UndersampledIntervals;

  // 2. Working-set change? Build regions for the new hot code.
  if (!Undersampled && UcrFraction > Config.UcrTriggerFraction)
    triggerFormation(UcrScratch);

  // 3. Local phase detection, one region at a time. Regions formed in step
  // 2 start analyzing with the *next* interval (their histograms for this
  // one are empty).
  for (RegionId Id = 0; Id < Regions.size(); ++Id) {
    if (!Active[Id])
      continue;
    RegionStats &RS = Stats[Id];
    ++RS.LifetimeIntervals;
    const InstrHistogram &Curr = CurrHists[Id];
    if (!Curr.empty()) {
      ++RS.ActiveIntervals;
      RS.TotalSamples += Curr.total();
      LastSampledInterval[Id] = Intervals;
      if (!Undersampled) {
        if (Fast)
          Detectors[Id]->observeMoments(Curr, SxyAcc[Id]);
        else
          Detectors[Id]->observe(Curr.bins());
        if (Obs) {
          if (Detectors[Id]->lastObservationComparedR())
            obs::addTo(Obs->SimilarityCompares);
          obs::observeIn(Obs->PhaseR, Detectors[Id]->lastR());
          const LocalPhaseState Now = Detectors[Id]->state();
          if (Now != Detectors[Id]->stateBeforeLastObserve())
            obs::recordEvent(Obs->Tracer, phaseEntryKind(Now), Obs->Stream,
                             Id, Intervals, Detectors[Id]->lastR());
        }
        if (Detectors[Id]->lastObservationChangedPhase())
          emit(Detectors[Id]->state() == LocalPhaseState::Stable
                   ? RegionEvent::Kind::BecameStable
                   : RegionEvent::Kind::BecameUnstable,
               Id);
      }

      // Performance characteristics: DPI accounting and delinquent loads.
      // Miss counts are real samples, so they accrue even when degraded;
      // only the windowed feedback signal (which drives unpatch
      // decisions) is withheld from under-sampled evidence.
      const InstrHistogram &Misses = CurrMissHists[Id];
      RS.TotalMisses += Misses.total();
      if (!Undersampled)
        RecentMiss[Id].add(static_cast<double>(Misses.total()) /
                           static_cast<double>(Curr.total()));
      if (!Misses.empty()) {
        std::span<const std::uint32_t> Bins = Misses.bins();
        std::vector<std::uint64_t> &Cum = CumulativeMisses[Id];
        for (std::size_t Bin = 0; Bin < Bins.size(); ++Bin)
          Cum[Bin] += Bins[Bin];
      }
      if (!Undersampled && Config.TrackMissPhases && !Misses.empty()) {
        if (Fast)
          MissDetectors[Id]->observeMoments(Misses, MissSxyAcc[Id]);
        else
          MissDetectors[Id]->observe(Misses.bins());
        RS.MissPhaseChanges = MissDetectors[Id]->phaseChanges();
        if (MissDetectors[Id]->lastObservationChangedPhase() &&
            !Detectors[Id]->lastObservationChangedPhase())
          emit(RegionEvent::Kind::MissPhaseChange, Id);
      }
    }
    RS.PhaseChanges = Detectors[Id]->phaseChanges();
    if (Detectors[Id]->state() == LocalPhaseState::Stable)
      ++RS.StableIntervals;
    if (Config.RecordTimelines) {
      SampleTimelines[Id].push_back(
          static_cast<std::uint32_t>(Curr.total()));
      RTimelines[Id].push_back(Detectors[Id]->lastR());
      StateTimelines[Id].push_back(Detectors[Id]->state());
    }
  }

  // 4. Optional cost control: stop monitoring long-cold regions.
  if (Config.PruneColdRegions)
    pruneCold();

  // Per-interval observability roll-up: a handful of relaxed atomic adds,
  // never per-sample work, so full instrumentation stays within the <3%
  // overhead budget (bench_obs_overhead).
  if (Obs) {
    obs::addTo(Obs->Intervals);
    obs::addTo(Obs->SamplesTotal, Samples.size());
    obs::addTo(Obs->SamplesUcr, UcrScratch.size());
    obs::addTo(Obs->SamplesOutOfRegion, RejectedNow);
    if (Undersampled)
      obs::addTo(Obs->UndersampledIntervals);
    obs::setGauge(Obs->LastUcrFraction, UcrFraction);
    obs::setGauge(Obs->ActiveRegions,
                  static_cast<double>(activeRegionCount()));
    obs::observeIn(Obs->IntervalSamples,
                   static_cast<double>(Samples.size()));
  }

  ++Intervals;
}

void RegionMonitor::triggerFormation(std::span<const Addr> UcrPcs) {
  ++FormationTriggers;
  if (Obs)
    obs::addTo(Obs->FormationTriggers);

  // Group the unmonitored samples by the formable region (if any) that the
  // code oracle proposes for them. std::map keys give deterministic order.
  struct Candidate {
    CodeRegionInfo Info;
    std::size_t Count = 0;
  };
  std::map<std::pair<Addr, Addr>, Candidate> Candidates;
  for (Addr Pc : UcrPcs) {
    std::optional<CodeRegionInfo> Info = Map.regionFor(Pc);
    if (!Info)
      continue; // non-regionable code: stays in the UCR forever
    auto [It, Inserted] =
        Candidates.try_emplace({Info->Start, Info->End});
    if (Inserted)
      It->second.Info = std::move(*Info);
    ++It->second.Count;
  }

  // Hottest candidates first.
  std::vector<const Candidate *> Ranked;
  Ranked.reserve(Candidates.size());
  for (const auto &[Bounds, C] : Candidates)
    Ranked.push_back(&C);
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const Candidate *A, const Candidate *B) {
                     return A->Count > B->Count;
                   });

  std::size_t ActiveCount = 0;
  for (RegionId Id = 0; Id < Regions.size(); ++Id)
    ActiveCount += Active[Id] ? 1 : 0;

  std::size_t FormedNow = 0;
  for (const Candidate *C : Ranked) {
    if (FormedNow >= Config.MaxNewRegionsPerTrigger ||
        ActiveCount >= Config.MaxRegions)
      break;
    if (C->Count < Config.MinRegionSamples)
      break; // ranked by count: all later candidates are colder

    // Skip exact duplicates of an active region (its samples would have
    // been attributed, but a just-formed region can race its first
    // samples within this same interval).
    const bool Duplicate = std::any_of(
        Regions.begin(), Regions.end(), [&](const Region &R) {
          return Active[R.Id] && R.Start == C->Info.Start &&
                 R.End == C->Info.End;
        });
    if (Duplicate)
      continue;

    const auto Id = static_cast<RegionId>(Regions.size());
    Region R;
    R.Id = Id;
    R.Name = C->Info.Name;
    R.Start = C->Info.Start;
    R.End = C->Info.End;
    R.FormedAtInterval = Intervals;
    Regions.push_back(std::move(R));
    Active.push_back(true);
    CurrHists.emplace_back(C->Info.Start, C->Info.End);
    CurrMissHists.emplace_back(C->Info.Start, C->Info.End);
    Detectors.push_back(std::make_unique<LocalPhaseDetector>(
        Regions.back().instrCount(), *Metric, Config.Lpd));
    MissDetectors.push_back(
        Config.TrackMissPhases
            ? std::make_unique<LocalPhaseDetector>(
                  Regions.back().instrCount(), *Metric, Config.Lpd)
            : nullptr);
    Stats.emplace_back();
    LastSampledInterval.push_back(Intervals);
    CumulativeMisses.emplace_back(Regions.back().instrCount(), 0);
    RecentMiss.emplace_back(Config.MissWindowIntervals);
    if (Config.RecordTimelines) {
      SampleTimelines.emplace_back();
      RTimelines.emplace_back();
      StateTimelines.emplace_back();
    }
    Attrib->insert(Id, Regions.back().Start, Regions.back().End);
    ++ActiveCount;
    ++FormedNow;
    emit(RegionEvent::Kind::Formed, Id);
  }
}

void RegionMonitor::pruneCold() {
  for (RegionId Id = 0; Id < Regions.size(); ++Id) {
    if (!Active[Id])
      continue;
    if (Intervals - LastSampledInterval[Id] <
        Config.PruneAfterIdleIntervals)
      continue;
    Active[Id] = false;
    Attrib->remove(Id, Regions[Id].Start, Regions[Id].End);
    emit(RegionEvent::Kind::Pruned, Id);
  }
}
