//===- core/Attribution.cpp - Sample-to-region attribution ----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Attribution.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace regmon;
using namespace regmon::core;

Attributor::~Attributor() = default;

void ListAttributor::insert(RegionId Id, Addr Start, Addr End) {
  assert(Start < End && "region must be non-empty");
  Entries.push_back(Entry{Start, End, Id});
}

void ListAttributor::remove(RegionId Id, Addr Start, Addr End) {
  const auto It = std::find_if(
      Entries.begin(), Entries.end(), [&](const Entry &E) {
        return E.Id == Id && E.Start == Start && E.End == End;
      });
  assert(It != Entries.end() && "removing a region that was never inserted");
  Entries.erase(It);
}

void ListAttributor::lookup(Addr Pc, std::vector<RegionId> &Out) const {
  for (const Entry &E : Entries)
    if (Pc >= E.Start && Pc < E.End)
      Out.push_back(E.Id);
}

void IntervalTreeAttributor::insert(RegionId Id, Addr Start, Addr End) {
  Tree.insert(Start, End, Id);
}

void IntervalTreeAttributor::remove(RegionId Id, Addr Start, Addr End) {
  [[maybe_unused]] const bool Erased = Tree.erase(Start, End, Id);
  assert(Erased && "removing a region that was never inserted");
}

void IntervalTreeAttributor::lookup(Addr Pc,
                                    std::vector<RegionId> &Out) const {
  Tree.stab(Pc, Out);
}

std::unique_ptr<Attributor> regmon::core::makeAttributor(AttributorKind Kind) {
  switch (Kind) {
  case AttributorKind::List:
    return std::make_unique<ListAttributor>();
  case AttributorKind::IntervalTree:
    return std::make_unique<IntervalTreeAttributor>();
  }
  return nullptr;
}
