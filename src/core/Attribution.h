//===- core/Attribution.h - Sample-to-region attribution --------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Distributing performance-counter samples across monitored regions is the
/// dominant cost of region monitoring (paper section 3.2.3). Two strategies
/// are provided behind one interface:
///
///  * ListAttributor         -- walk the region list: O(n) per sample, the
///                              scheme the prototype started with;
///  * IntervalTreeAttributor -- stab an augmented interval tree:
///                              O(log n + k) per sample, the improvement the
///                              paper proposes (Fig. 16 compares the two).
///
/// Both report *every* region containing the PC: regions overlap (nested
/// loops), which is why Fig. 2's stacked sample counts exceed the buffer
/// size.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_CORE_ATTRIBUTION_H
#define REGMON_CORE_ATTRIBUTION_H

#include "core/Region.h"
#include "support/IntervalTree.h"
#include "support/Types.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace regmon::core {

/// Strategy interface for mapping a PC to the regions containing it.
class Attributor {
public:
  virtual ~Attributor();

  /// Registers region \p Id covering [\p Start, \p End).
  virtual void insert(RegionId Id, Addr Start, Addr End) = 0;

  /// Unregisters a region previously inserted with identical bounds.
  virtual void remove(RegionId Id, Addr Start, Addr End) = 0;

  /// Appends to \p Out the id of every region containing \p Pc. \p Out is
  /// not cleared (callers reuse one buffer across a whole interval).
  virtual void lookup(Addr Pc, std::vector<RegionId> &Out) const = 0;

  /// Returns the number of registered regions.
  virtual std::size_t size() const = 0;
};

/// O(n)-per-sample linear scan over the region list.
class ListAttributor final : public Attributor {
public:
  void insert(RegionId Id, Addr Start, Addr End) override;
  void remove(RegionId Id, Addr Start, Addr End) override;
  void lookup(Addr Pc, std::vector<RegionId> &Out) const override;
  std::size_t size() const override { return Entries.size(); }

private:
  struct Entry {
    Addr Start;
    Addr End;
    RegionId Id;
  };
  std::vector<Entry> Entries;
};

/// O(log n + k)-per-sample stabbing query over an augmented interval tree.
class IntervalTreeAttributor final : public Attributor {
public:
  void insert(RegionId Id, Addr Start, Addr End) override;
  void remove(RegionId Id, Addr Start, Addr End) override;
  void lookup(Addr Pc, std::vector<RegionId> &Out) const override;
  std::size_t size() const override { return Tree.size(); }

private:
  IntervalTree Tree;
};

/// Selects which attribution strategy a RegionMonitor uses.
enum class AttributorKind : std::uint8_t {
  List,
  IntervalTree,
};

/// Factory for the strategy selected by \p Kind.
std::unique_ptr<Attributor> makeAttributor(AttributorKind Kind);

} // namespace regmon::core

#endif // REGMON_CORE_ATTRIBUTION_H
