//===- core/Similarity.h - Histogram similarity metrics ---------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Similarity metrics between a region's stable sample histogram and its
/// current-interval histogram. The paper uses Pearson's coefficient of
/// correlation (section 3.2.1) and names "cheaper means of measuring
/// similarity" as future work (section 5); we provide Pearson plus two
/// cheaper alternatives behind one interface so the trade-off can be
/// measured (bench_ablation_similarity):
///
///  * PearsonSimilarity   -- the paper's metric; scale-invariant and
///                           mean-invariant, so uniform sample-count
///                           variation does not fake a phase change.
///  * CosineSimilarity    -- scale-invariant but not mean-invariant;
///                           slightly cheaper (no mean subtraction).
///  * OverlapSimilarity   -- normalized histogram intersection
///                           (1 - L1/2 of the normalized histograms);
///                           cheapest, no multiplications on the hot path.
///
/// Every metric returns a value in [-1, 1] where >= the detector threshold
/// means "same behaviour". Anti-correlation is deliberately *low*
/// similarity: the paper treats r = -1 as a behaviour change too.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_CORE_SIMILARITY_H
#define REGMON_CORE_SIMILARITY_H

#include "support/Histogram.h"

#include <cstdint>
#include <memory>
#include <span>

namespace regmon::core {

/// Strategy interface for histogram similarity.
class SimilarityMetric {
public:
  virtual ~SimilarityMetric();

  /// Returns the similarity of two equal-length histograms in [-1, 1].
  virtual double compare(std::span<const std::uint32_t> Stable,
                         std::span<const std::uint32_t> Current) const = 0;

  /// Returns a short identifier for reports ("pearson", ...).
  virtual const char *name() const = 0;
};

/// Pearson's coefficient of correlation (the paper's metric).
class PearsonSimilarity final : public SimilarityMetric {
public:
  double compare(std::span<const std::uint32_t> Stable,
                 std::span<const std::uint32_t> Current) const override;
  const char *name() const override { return "pearson"; }
};

/// Cosine of the angle between the raw count vectors.
class CosineSimilarity final : public SimilarityMetric {
public:
  double compare(std::span<const std::uint32_t> Stable,
                 std::span<const std::uint32_t> Current) const override;
  const char *name() const override { return "cosine"; }
};

/// Histogram intersection of the count vectors normalized to sum 1:
/// sum_i min(p_i, q_i), which equals 1 - L1(p, q) / 2.
class OverlapSimilarity final : public SimilarityMetric {
public:
  double compare(std::span<const std::uint32_t> Stable,
                 std::span<const std::uint32_t> Current) const override;
  const char *name() const override { return "overlap"; }
};

/// Selects a similarity metric by name.
enum class SimilarityKind : std::uint8_t {
  Pearson,
  Cosine,
  Overlap,
};

/// Factory for the metric selected by \p Kind. An out-of-enum \p Kind --
/// reachable through a corrupted checkpoint restore or a casted config --
/// falls back to the paper's Pearson metric instead of returning null for
/// callers to dereference; when \p UsedFallback is non-null it is set to
/// true in that case (false otherwise) so callers can report the repair
/// through the SimilarityFallbacks metric.
std::unique_ptr<SimilarityMetric>
makeSimilarity(SimilarityKind Kind, bool *UsedFallback = nullptr);

} // namespace regmon::core

#endif // REGMON_CORE_SIMILARITY_H
