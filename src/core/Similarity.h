//===- core/Similarity.h - Histogram similarity metrics ---------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Similarity metrics between a region's stable sample histogram and its
/// current-interval histogram. The paper uses Pearson's coefficient of
/// correlation (section 3.2.1) and names "cheaper means of measuring
/// similarity" as future work (section 5); we provide Pearson plus two
/// cheaper alternatives behind one interface so the trade-off can be
/// measured (bench_ablation_similarity):
///
///  * PearsonSimilarity   -- the paper's metric; scale-invariant and
///                           mean-invariant, so uniform sample-count
///                           variation does not fake a phase change.
///  * CosineSimilarity    -- scale-invariant but not mean-invariant;
///                           slightly cheaper (no mean subtraction).
///  * OverlapSimilarity   -- normalized histogram intersection
///                           (1 - L1/2 of the normalized histograms);
///                           cheapest, no multiplications on the hot path.
///
/// Every metric returns a value in [-1, 1] where >= the detector threshold
/// means "same behaviour". Anti-correlation is deliberately *low*
/// similarity: the paper treats r = -1 as a behaviour change too.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_CORE_SIMILARITY_H
#define REGMON_CORE_SIMILARITY_H

#include "support/Histogram.h"
#include "support/HotpathKernels.h"

#include <cstdint>
#include <memory>
#include <span>

namespace regmon::core {

/// Strategy interface for histogram similarity.
class SimilarityMetric {
public:
  virtual ~SimilarityMetric();

  /// Returns the similarity of two equal-length histograms in [-1, 1].
  virtual double compare(std::span<const std::uint32_t> Stable,
                         std::span<const std::uint32_t> Current) const = 0;

  /// Returns true if the metric is a pure function of the integer moments
  /// in \ref HistMoments, i.e. \ref compareMoments produces bit-identical
  /// results to \ref compare. Metrics needing per-bin state (Overlap's
  /// per-bin min) return false and always take the naive path.
  virtual bool supportsMoments() const { return false; }

  /// Returns the similarity from pre-accumulated integer moments over
  /// \p N bins. Only meaningful when \ref supportsMoments; the default
  /// returns 0 (never-similar) so a misrouted call fails loudly in tests
  /// rather than silently agreeing.
  virtual double compareMoments(std::uint64_t N, const HistMoments &M) const;

  /// Returns a short identifier for reports ("pearson", ...).
  virtual const char *name() const = 0;
};

/// Pearson's coefficient of correlation (the paper's metric).
class PearsonSimilarity final : public SimilarityMetric {
public:
  double compare(std::span<const std::uint32_t> Stable,
                 std::span<const std::uint32_t> Current) const override;
  bool supportsMoments() const override { return true; }
  double compareMoments(std::uint64_t N,
                        const HistMoments &M) const override;
  const char *name() const override { return "pearson"; }
};

/// Cosine of the angle between the raw count vectors.
class CosineSimilarity final : public SimilarityMetric {
public:
  double compare(std::span<const std::uint32_t> Stable,
                 std::span<const std::uint32_t> Current) const override;
  bool supportsMoments() const override { return true; }
  double compareMoments(std::uint64_t N,
                        const HistMoments &M) const override;
  const char *name() const override { return "cosine"; }
};

/// Histogram intersection of the count vectors normalized to sum 1:
/// sum_i min(p_i, q_i), which equals 1 - L1(p, q) / 2.
class OverlapSimilarity final : public SimilarityMetric {
public:
  double compare(std::span<const std::uint32_t> Stable,
                 std::span<const std::uint32_t> Current) const override;
  const char *name() const override { return "overlap"; }
};

/// Selects a similarity metric by name.
enum class SimilarityKind : std::uint8_t {
  Pearson,
  Cosine,
  Overlap,
};

/// Selects how interval-end similarity is computed. Both engines funnel
/// through the same integer moments and the same combine functions
/// (support/HotpathKernels.h), so they are bit-identical; the choice only
/// moves time. Naive stays compiled-in as the differential-test oracle.
enum class SimilarityEngine : std::uint8_t {
  /// O(1) interval end: moments maintained as samples land.
  Incremental,
  /// O(bins) interval end: moments recomputed from scratch (the oracle).
  Naive,
};

/// Similarity configuration of a region monitor: which metric, computed by
/// which engine. Implicitly convertible from a bare SimilarityKind so
/// `Config.Similarity = SimilarityKind::Cosine` keeps selecting the
/// default (incremental) engine.
struct SimilarityConfig {
  SimilarityKind Kind = SimilarityKind::Pearson;
  SimilarityEngine Engine = SimilarityEngine::Incremental;

  SimilarityConfig() = default;
  SimilarityConfig(SimilarityKind K) : Kind(K) {} // NOLINT: implicit
  SimilarityConfig(SimilarityKind K, SimilarityEngine E)
      : Kind(K), Engine(E) {}
};

/// Factory for the metric selected by \p Kind. An out-of-enum \p Kind --
/// reachable through a corrupted checkpoint restore or a casted config --
/// falls back to the paper's Pearson metric instead of returning null for
/// callers to dereference; when \p UsedFallback is non-null it is set to
/// true in that case (false otherwise) so callers can report the repair
/// through the SimilarityFallbacks metric.
std::unique_ptr<SimilarityMetric>
makeSimilarity(SimilarityKind Kind, bool *UsedFallback = nullptr);

} // namespace regmon::core

#endif // REGMON_CORE_SIMILARITY_H
