//===- rto/Harness.h - Runtime-optimizer strategies & harness --*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end runtime-optimizer simulation behind Fig. 17.
///
/// Two strategies run the identical program (same script, same seed):
///
///  * **RTO-ORIG** -- the paper's baseline: centroid-based global phase
///    detection gates everything. Traces are deployed on hot regions while
///    the global phase is stable and -- in the "fair comparison" variant
///    the paper constructed -- *all* traces are unpatched whenever the
///    global phase leaves stable, so optimizations can be re-evaluated when
///    the phase restabilizes.
///
///  * **RTO-LPD** -- the paper's system: region monitoring with local phase
///    detection. Each region's trace is deployed when *that region*
///    stabilizes and unpatched when it destabilizes; a globally-chaotic
///    interval leaves locally-stable regions optimized. Self-monitoring
///    optionally undoes traces that ground truth says turned harmful.
///
/// The speedup of LPD over ORIG is cycles(ORIG) / cycles(LPD) - 1 over the
/// identical scripted work.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_RTO_HARNESS_H
#define REGMON_RTO_HARNESS_H

#include "core/RegionMonitor.h"
#include "gpd/CentroidPhaseDetector.h"
#include "obs/Instruments.h"
#include "rto/OptimizationModel.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/PhaseScript.h"
#include "sim/Program.h"

#include <cstdint>

namespace regmon::rto {

/// How RTO-LPD verifies deployed optimizations (the paper's section 5
/// feedback mechanism).
enum class SelfMonitorMode : std::uint8_t {
  /// Trust every deployment (the paper's baseline assumption).
  Off,
  /// Oracle: consult the simulation's ground-truth benefit model. Useful
  /// as an upper bound in ablations.
  GroundTruth,
  /// Honest: compare the region's observed D-cache-miss fraction after
  /// deployment against its pre-deployment baseline; undo traces that do
  /// not reduce misses. Uses only information a real system has.
  Observational,
};

/// Harness parameters shared by both strategies.
struct RtoConfig {
  /// Sampling front-end parameters (Fig. 17 sweeps the period).
  sampling::SamplingConfig Sampling;
  /// Region monitor parameters (used by both strategies: ORIG still needs
  /// region formation to select traces).
  core::RegionMonitorConfig Monitor;
  /// Global phase detector parameters (ORIG only).
  gpd::CentroidConfig Gpd;
  /// Critical-path cycles charged per patch or unpatch operation.
  double PatchOverheadCycles = 25'000;
  /// Minimum samples a region must draw in the current interval before
  /// ORIG considers it hot enough to optimize.
  std::size_t MinTraceSamples = 41; // ~2% of a 2032-sample buffer
  /// LPD only: how deployed traces are verified.
  SelfMonitorMode SelfMonitor = SelfMonitorMode::GroundTruth;
  /// GroundTruth mode: undo after this many consecutive harmful intervals.
  unsigned SelfMonitorHarmIntervals = 2;
  /// Observational mode: intervals to wait after deployment before judging
  /// (the miss window must refill with post-deployment samples).
  unsigned SelfMonitorWarmupIntervals = 10;
  /// Observational mode: a trace must cut the region's miss fraction by at
  /// least this factor relative to the pre-deployment baseline.
  double SelfMonitorMinMissReduction = 0.25;
  /// Observational mode: regions with a baseline miss fraction below this
  /// are not worth judging (nothing to improve).
  double SelfMonitorMinBaselineMiss = 0.02;
  /// Fault injection: probability that a trace deployment fails mid-patch
  /// and is rolled back (see TraceDeployments::setDeployFaultHook).
  /// Applies to both strategies. 0 disables injection.
  double DeployFailureRate = 0;
  /// Seed of the deployment-failure decision stream; independent of the
  /// run seed so the same failure pattern can be replayed across
  /// strategies and sweeps.
  std::uint64_t DeployFailureSeed = 0;
  /// Observability instruments (obs layer); null disables. Counters are
  /// aggregated once per run; trace-lifecycle events use the monitor's
  /// interval count as their logical clock. Must outlive the run.
  const obs::RtoInstruments *Obs = nullptr;
};

/// Outcome of one optimizer run.
struct RtoResult {
  /// Actual machine cycles to execute the whole program.
  Cycles TotalCycles = 0;
  /// Scripted work executed (identical across strategies by construction).
  Work TotalWork = 0;
  /// Complete sampling intervals observed.
  std::uint64_t Intervals = 0;
  /// Patch / unpatch operations performed.
  std::uint64_t Patches = 0;
  std::uint64_t Unpatches = 0;
  /// Global phase changes seen (ORIG; 0 for LPD).
  std::uint64_t GlobalPhaseChanges = 0;
  /// Fraction of intervals the gating detector reported stable: GPD-stable
  /// for ORIG, at least one region locally stable for LPD.
  double StableFraction = 0;
  /// Traces undone by self-monitoring (LPD; 0 for ORIG).
  std::uint64_t SelfUndos = 0;
  /// Deployments failed by fault injection, each fully rolled back.
  std::uint64_t FailedPatches = 0;
};

/// Runs the program with no runtime optimizer: cycles == work. Useful as
/// the denominator for absolute speedups and as an engine sanity check.
RtoResult runUnoptimized(const sim::Program &Prog,
                         const sim::PhaseScript &Script, std::uint64_t Seed,
                         const RtoConfig &Config);

/// Runs the centroid-gated baseline optimizer (RTO-ORIG).
RtoResult runOriginal(const sim::Program &Prog,
                      const sim::PhaseScript &Script,
                      const OptimizationModel &Model, std::uint64_t Seed,
                      const RtoConfig &Config);

/// Runs the region-monitoring optimizer (RTO-LPD).
RtoResult runLocal(const sim::Program &Prog, const sim::PhaseScript &Script,
                   const OptimizationModel &Model, std::uint64_t Seed,
                   const RtoConfig &Config);

/// Returns the Fig. 17 quantity: percentage speedup of \p Lpd over
/// \p Orig, (cycles(Orig) / cycles(Lpd) - 1) * 100.
double speedupPercent(const RtoResult &Orig, const RtoResult &Lpd);

} // namespace regmon::rto

#endif // REGMON_RTO_HARNESS_H
