//===- rto/Harness.cpp - Runtime-optimizer strategies & harness -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rto/Harness.h"

#include "rto/TraceDeployments.h"
#include "sim/ProgramCodeMap.h"
#include "support/Rng.h"

#include <cassert>
#include <map>
#include <optional>

using namespace regmon;
using namespace regmon::rto;

namespace {

/// Resolves monitored regions back to program loops. Regions are formed
/// from loop bounds, so the (start, end) pair identifies the loop.
class RegionLoopIndex {
public:
  explicit RegionLoopIndex(const sim::Program &Prog) {
    for (const sim::Loop &L : Prog.loops())
      ByBounds[{L.Start, L.End}] = L.Id;
  }

  std::optional<sim::LoopId> loopFor(const core::Region &R) const {
    const auto It = ByBounds.find({R.Start, R.End});
    if (It == ByBounds.end())
      return std::nullopt;
    return It->second;
  }

private:
  std::map<std::pair<Addr, Addr>, sim::LoopId> ByBounds;
};

/// Folds one finished run's deployment counters into the attached
/// instruments (no-op when Config.Obs is null). Aggregating once at run
/// end keeps the hot loop free of per-interval metric traffic.
void foldRunCounters(const RtoConfig &Config, const RtoResult &Result) {
  if (!Config.Obs)
    return;
  obs::addTo(Config.Obs->Patches, Result.Patches);
  obs::addTo(Config.Obs->Unpatches, Result.Unpatches);
  obs::addTo(Config.Obs->FailedPatches, Result.FailedPatches);
  obs::addTo(Config.Obs->SelfUndos, Result.SelfUndos);
}

/// Owns the seeded decision stream for injected deployment failures and
/// installs it on \p Traces when the config asks for injection. Failures
/// are a function of (DeployFailureSeed, attempt index) only, so the same
/// pattern replays across strategies and runs.
class DeployFaultInjector {
public:
  DeployFaultInjector(TraceDeployments &Traces, const RtoConfig &Config)
      : FaultRng(Config.DeployFailureSeed), Rate(Config.DeployFailureRate) {
    if (Rate > 0)
      Traces.setDeployFaultHook(
          [this](sim::LoopId) { return FaultRng.nextDouble() < Rate; });
  }

private:
  Rng FaultRng;
  double Rate;
};

} // namespace

RtoResult rto::runUnoptimized(const sim::Program &Prog,
                              const sim::PhaseScript &Script,
                              std::uint64_t Seed, const RtoConfig &Config) {
  sim::Engine Eng(Prog, Script, Seed);
  sampling::Sampler Sampler(Eng, Config.Sampling);
  RtoResult Result;
  Result.Intervals = Sampler.run([](std::span<const Sample>) {});
  Eng.finish();
  Result.TotalCycles = Eng.cycles();
  Result.TotalWork = Eng.work();
  return Result;
}

RtoResult rto::runOriginal(const sim::Program &Prog,
                           const sim::PhaseScript &Script,
                           const OptimizationModel &Model,
                           std::uint64_t Seed, const RtoConfig &Config) {
  sim::Engine Eng(Prog, Script, Seed);
  sampling::Sampler Sampler(Eng, Config.Sampling);
  sim::ProgramCodeMap Map(Prog);
  core::RegionMonitor Monitor(Map, Config.Monitor);
  gpd::CentroidPhaseDetector Gpd(Config.Gpd);
  TraceDeployments Traces(Eng, Model, Config.PatchOverheadCycles);
  DeployFaultInjector Faults(Traces, Config);
  RegionLoopIndex Index(Prog);

  std::uint64_t StableIntervals = 0;

  Sampler.run([&](std::span<const Sample> Buffer) {
    // Physics first: behaviour drift re-prices already-deployed traces
    // whether or not the optimizer notices.
    Traces.refresh();

    Monitor.observeInterval(Buffer); // region formation / bookkeeping only
    const gpd::GlobalPhaseState State = Gpd.observeInterval(Buffer);

    if (State != gpd::GlobalPhaseState::Stable) {
      // The fair-comparison ORIG variant: a phase change (leaving stable)
      // unpatches everything so optimizations are re-evaluated when the
      // phase restabilizes.
      if (Gpd.lastIntervalChangedPhase()) {
        const std::uint64_t Before = Traces.unpatches();
        Traces.unpatchAll();
        if (Config.Obs && Traces.unpatches() > Before)
          obs::recordEvent(Config.Obs->Tracer, obs::EventKind::TraceUndone,
                           Config.Obs->Stream, 0, Monitor.intervals(),
                           static_cast<double>(Traces.unpatches() - Before));
      }
      return;
    }
    ++StableIntervals;

    // Globally stable: deploy traces on the hot regions of this interval.
    for (core::RegionId Id : Monitor.activeRegionIds()) {
      if (Monitor.lastSampleCount(Id) < Config.MinTraceSamples)
        continue;
      const std::optional<sim::LoopId> L =
          Index.loopFor(Monitor.regions()[Id]);
      if (!L || Traces.deployed(*L))
        continue;
      if (Traces.deploy(*L) && Config.Obs)
        obs::recordEvent(Config.Obs->Tracer, obs::EventKind::TraceDeployed,
                         Config.Obs->Stream, Id, Monitor.intervals(),
                         static_cast<double>(*L));
    }
  });
  Eng.finish();

  RtoResult Result;
  Result.TotalCycles = Eng.cycles();
  Result.TotalWork = Eng.work();
  Result.Intervals = Sampler.intervals();
  Result.Patches = Traces.patches();
  Result.Unpatches = Traces.unpatches();
  Result.FailedPatches = Traces.failedPatches();
  Result.GlobalPhaseChanges = Gpd.phaseChanges();
  Result.StableFraction =
      Result.Intervals == 0
          ? 0.0
          : static_cast<double>(StableIntervals) /
                static_cast<double>(Result.Intervals);
  foldRunCounters(Config, Result);
  return Result;
}

RtoResult rto::runLocal(const sim::Program &Prog,
                        const sim::PhaseScript &Script,
                        const OptimizationModel &Model, std::uint64_t Seed,
                        const RtoConfig &Config) {
  sim::Engine Eng(Prog, Script, Seed);
  sampling::Sampler Sampler(Eng, Config.Sampling);
  sim::ProgramCodeMap Map(Prog);
  core::RegionMonitor Monitor(Map, Config.Monitor);
  TraceDeployments Traces(Eng, Model, Config.PatchOverheadCycles);
  DeployFaultInjector Faults(Traces, Config);
  RegionLoopIndex Index(Prog);

  std::uint64_t SelfUndos = 0;
  std::uint64_t StableIntervals = 0;

  // Observational self-monitoring state: per loop, the pre-deployment
  // miss-fraction baseline and when the trace went in.
  struct DeploymentRecord {
    core::RegionId Region = 0;
    double BaselineMiss = 0;
    std::uint64_t DeployedAt = 0;
  };
  std::map<sim::LoopId, DeploymentRecord> Watch;

  Monitor.setEventHandler([&](const core::RegionEvent &Event) {
    const std::optional<sim::LoopId> L =
        Index.loopFor(Monitor.regions()[Event.Id]);
    if (!L)
      return;
    switch (Event.K) {
    case core::RegionEvent::Kind::BecameStable:
      if (Traces.deploy(*L)) {
        if (Config.Obs)
          obs::recordEvent(Config.Obs->Tracer, obs::EventKind::TraceDeployed,
                           Config.Obs->Stream, Event.Id, Event.Interval,
                           static_cast<double>(*L));
        if (Config.SelfMonitor == SelfMonitorMode::Observational)
          Watch[*L] = DeploymentRecord{Event.Id,
                                       Monitor.recentMissFraction(Event.Id),
                                       Event.Interval};
      }
      break;
    case core::RegionEvent::Kind::BecameUnstable:
    case core::RegionEvent::Kind::Pruned:
    case core::RegionEvent::Kind::MissPhaseChange:
      // A miss-characteristics change invalidates a prefetch trace even
      // when the cycle histogram held steady.
      if (Traces.deployed(*L)) {
        Traces.unpatch(*L);
        if (Config.Obs)
          obs::recordEvent(Config.Obs->Tracer, obs::EventKind::TraceUndone,
                           Config.Obs->Stream, Event.Id, Event.Interval,
                           static_cast<double>(*L));
      }
      break;
    case core::RegionEvent::Kind::Formed:
      break;
    }
  });

  Sampler.run([&](std::span<const Sample> Buffer) {
    Traces.refresh();
    Monitor.observeInterval(Buffer);

    // Self-monitoring: a region can stay locally "stable" while its trace
    // has stopped helping (e.g. the delinquent loads moved but the cycle
    // histogram did not). Undo such traces.
    switch (Config.SelfMonitor) {
    case SelfMonitorMode::Off:
      break;
    case SelfMonitorMode::GroundTruth:
      for (core::RegionId Id : Monitor.activeRegionIds()) {
        const std::optional<sim::LoopId> L =
            Index.loopFor(Monitor.regions()[Id]);
        if (!L || !Traces.deployed(*L))
          continue;
        if (Traces.harmfulStreak(*L) >= Config.SelfMonitorHarmIntervals) {
          Traces.unpatch(*L);
          ++SelfUndos;
          if (Config.Obs)
            obs::recordEvent(Config.Obs->Tracer,
                             obs::EventKind::TraceSelfUndo,
                             Config.Obs->Stream, Id, Monitor.intervals(),
                             static_cast<double>(*L));
        }
      }
      break;
    case SelfMonitorMode::Observational:
      for (auto It = Watch.begin(); It != Watch.end();) {
        const auto &[L, Record] = *It;
        if (!Traces.deployed(L)) {
          It = Watch.erase(It); // unpatched through another path
          continue;
        }
        const bool WarmedUp = Monitor.intervals() >=
                              Record.DeployedAt +
                                  Config.SelfMonitorWarmupIntervals;
        const bool Judgeable =
            Record.BaselineMiss >= Config.SelfMonitorMinBaselineMiss;
        if (WarmedUp && Judgeable) {
          const double Current = Monitor.recentMissFraction(Record.Region);
          const double Required =
              Record.BaselineMiss *
              (1.0 - Config.SelfMonitorMinMissReduction);
          if (Current > Required) {
            Traces.unpatch(L);
            ++SelfUndos;
            if (Config.Obs)
              obs::recordEvent(Config.Obs->Tracer,
                               obs::EventKind::TraceSelfUndo,
                               Config.Obs->Stream, Record.Region,
                               Monitor.intervals(), static_cast<double>(L));
            It = Watch.erase(It);
            continue;
          }
        }
        ++It;
      }
      break;
    }

    for (core::RegionId Id : Monitor.activeRegionIds())
      if (Monitor.detector(Id).state() == core::LocalPhaseState::Stable) {
        ++StableIntervals;
        break;
      }
  });
  Eng.finish();

  RtoResult Result;
  Result.TotalCycles = Eng.cycles();
  Result.TotalWork = Eng.work();
  Result.Intervals = Sampler.intervals();
  Result.Patches = Traces.patches();
  Result.Unpatches = Traces.unpatches();
  Result.FailedPatches = Traces.failedPatches();
  Result.SelfUndos = SelfUndos;
  Result.StableFraction =
      Result.Intervals == 0
          ? 0.0
          : static_cast<double>(StableIntervals) /
                static_cast<double>(Result.Intervals);
  foldRunCounters(Config, Result);
  return Result;
}

double rto::speedupPercent(const RtoResult &Orig, const RtoResult &Lpd) {
  assert(Lpd.TotalCycles > 0 && "LPD run executed no cycles");
  return (static_cast<double>(Orig.TotalCycles) /
              static_cast<double>(Lpd.TotalCycles) -
          1.0) *
         100.0;
}
