//===- rto/OptimizationModel.h - Trace-optimization benefit model -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground truth about what a deployed trace optimization is worth. The
/// paper's runtime optimizer (ADORE [13]) deploys data-prefetch traces:
/// when the prefetches match the loop's actual miss behaviour they remove a
/// fraction of its memory-stall cycles; when the behaviour has shifted (a
/// local phase change) the speculative prefetches stop helping and can hurt
/// by polluting the cache -- "the optimization deployed may not be
/// beneficial... due to the speculative nature of some optimizations like
/// data pre-fetching" (section 1).
///
/// Each loop carries:
///  * StallFraction -- the removable fraction of its cycles (a loop with
///    0.26 supports up to 1/(1-0.26) ~ 1.35x, mcf's reported 35% [13]);
///  * MismatchFactor -- the execution-rate factor when the deployed trace
///    was trained on a *different* behaviour profile than the one now
///    active (1.0 = merely useless, < 1.0 = harmful).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_RTO_OPTIMIZATIONMODEL_H
#define REGMON_RTO_OPTIMIZATIONMODEL_H

#include "sim/Program.h"

#include <cassert>
#include <span>
#include <vector>

namespace regmon::rto {

/// Per-loop optimization opportunity (ground truth, set by the workload).
struct LoopOpportunity {
  /// Fraction of the loop's cycles removable by an accurate trace.
  double StallFraction = 0.0;
  /// Execution-rate factor under a behaviour mismatch.
  double MismatchFactor = 1.0;
};

/// Evaluates the execution-rate factor of a deployed trace.
class OptimizationModel {
public:
  /// Creates a model with one opportunity entry per LoopId of the program.
  explicit OptimizationModel(std::vector<LoopOpportunity> Opportunities)
      : PerLoop(std::move(Opportunities)) {}

  /// Returns the opportunity table.
  std::span<const LoopOpportunity> opportunities() const { return PerLoop; }

  /// Returns the rate factor for a trace on loop \p L trained while profile
  /// \p Trained was active, evaluated while \p Active is active.
  double factor(sim::LoopId L, sim::ProfileId Active,
                sim::ProfileId Trained) const {
    assert(L < PerLoop.size() && "loop without an opportunity entry");
    const LoopOpportunity &Opp = PerLoop[L];
    if (Active == Trained) {
      assert(Opp.StallFraction >= 0 && Opp.StallFraction < 1 &&
             "stall fraction must leave some execution time");
      return 1.0 / (1.0 - Opp.StallFraction);
    }
    return Opp.MismatchFactor;
  }

private:
  std::vector<LoopOpportunity> PerLoop;
};

} // namespace regmon::rto

#endif // REGMON_RTO_OPTIMIZATIONMODEL_H
