//===- rto/TraceDeployments.cpp - Deployed-trace bookkeeping --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rto/TraceDeployments.h"

#include <cassert>

using namespace regmon;
using namespace regmon::rto;

TraceDeployments::TraceDeployments(sim::Engine &E,
                                   const OptimizationModel &M,
                                   double PatchOverhead, double MissCover)
    : Eng(E), Model(M), PatchOverheadCycles(PatchOverhead),
      PrefetchMissCover(MissCover), Trained(E.program().loops().size()),
      HarmStreak(E.program().loops().size(), 0) {
  assert(Model.opportunities().size() == Trained.size() &&
         "optimization model does not cover every loop");
  assert(PrefetchMissCover >= 0 && PrefetchMissCover <= 1 &&
         "miss coverage is a fraction");
}

std::optional<sim::ProfileId>
TraceDeployments::activeProfile(sim::LoopId L) const {
  const std::optional<sim::MixId> Mix = Eng.activeMix();
  if (!Mix)
    return std::nullopt;
  // The engine's script is not directly reachable from here; the active
  // mix's components are exposed through the engine instead.
  for (const sim::MixComponent &C : Eng.activeMixComponents())
    if (C.Loop == L && C.Weight > 0)
      return C.Profile;
  return std::nullopt;
}

void TraceDeployments::setDeployFaultHook(
    std::function<bool(sim::LoopId)> Hook) {
  DeployFaultHook = std::move(Hook);
}

bool TraceDeployments::deploy(sim::LoopId L) {
  assert(L < Trained.size() && "unknown loop");
  if (Trained[L])
    return true; // already carrying a trace
  const std::optional<sim::ProfileId> Active = activeProfile(L);
  if (!Active)
    return false;
  Trained[L] = *Active;
  HarmStreak[L] = 0;
  Eng.setSpeedup(L, Model.factor(L, *Active, *Active));
  Eng.setMissScale(L, 1.0 - PrefetchMissCover);
  Eng.addOverheadCycles(PatchOverheadCycles);
  if (DeployFaultHook && DeployFaultHook(L)) {
    // Mid-patch failure: undo everything the patch did so the loop runs
    // exactly as if the deployment had never been attempted -- except for
    // the critical-path cost of trying and of backing out.
    Trained[L].reset();
    Eng.setSpeedup(L, 1.0);
    Eng.setMissScale(L, 1.0);
    Eng.addOverheadCycles(PatchOverheadCycles);
    ++FailedPatches;
    return false;
  }
  ++Patches;
  return true;
}

void TraceDeployments::unpatch(sim::LoopId L) {
  assert(L < Trained.size() && "unknown loop");
  if (!Trained[L])
    return;
  Trained[L].reset();
  HarmStreak[L] = 0;
  Eng.setSpeedup(L, 1.0);
  Eng.setMissScale(L, 1.0);
  Eng.addOverheadCycles(PatchOverheadCycles);
  ++Unpatches;
}

void TraceDeployments::unpatchAll() {
  for (sim::LoopId L = 0; L < Trained.size(); ++L)
    unpatch(L);
}

void TraceDeployments::refresh() {
  for (sim::LoopId L = 0; L < Trained.size(); ++L) {
    if (!Trained[L])
      continue;
    const std::optional<sim::ProfileId> Active = activeProfile(L);
    if (!Active)
      continue; // loop not executing: factor is moot, keep last
    const double Factor = Model.factor(L, *Active, *Trained[L]);
    Eng.setSpeedup(L, Factor);
    // Prefetches trained on a different behaviour miss their targets: the
    // loop's observable miss rate returns to (or exceeds) baseline.
    Eng.setMissScale(L, *Active == *Trained[L] ? 1.0 - PrefetchMissCover
                                               : 1.0);
    HarmStreak[L] = Factor < 1.0 ? HarmStreak[L] + 1 : 0;
  }
}
