//===- rto/TraceDeployments.h - Deployed-trace bookkeeping ------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks which loops currently carry a deployed trace optimization and
/// keeps the execution engine's rate factors in sync with ground truth.
///
/// Policy (when to patch/unpatch) lives in the optimizer strategies;
/// *physics* lives here: a deployed trace's effect at any instant depends
/// on whether the loop's currently active behaviour matches the behaviour
/// the trace was trained on, whichever strategy deployed it.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_RTO_TRACEDEPLOYMENTS_H
#define REGMON_RTO_TRACEDEPLOYMENTS_H

#include "rto/OptimizationModel.h"
#include "sim/Engine.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace regmon::persist {
class StateCodec;
} // namespace regmon::persist

namespace regmon::rto {

/// Deployed-trace state for every loop of one engine run.
class TraceDeployments {
public:
  /// Creates the tracker. \p Eng and \p Model must outlive it.
  /// \p PatchOverheadCycles is charged to the program's critical path for
  /// every patch or unpatch operation. \p PrefetchMissCover is the
  /// fraction of a loop's D-cache misses a *matched* trace hides (its
  /// observable effect; a mismatched trace hides none).
  TraceDeployments(sim::Engine &Eng, const OptimizationModel &Model,
                   double PatchOverheadCycles,
                   double PrefetchMissCover = 0.75);

  /// Returns true while loop \p L carries a trace.
  bool deployed(sim::LoopId L) const { return Trained[L].has_value(); }

  /// Deploys a trace on \p L, trained on the loop's currently active
  /// behaviour profile. Returns false (and deploys nothing) if the loop is
  /// not executing right now -- there is no behaviour to train on -- or if
  /// the deploy-fault hook fails the patch (see \ref setDeployFaultHook);
  /// in the latter case the trace is rolled back completely, so a failed
  /// patch never leaves the loop half-optimized.
  bool deploy(sim::LoopId L);

  /// Installs \p Hook, consulted on every deploy after the trace has been
  /// applied; returning true models a mid-patch failure (code-cache
  /// exhaustion, a guard tripping during installation). The deployment is
  /// rolled back -- rate factors restored, training forgotten -- and both
  /// the attempt and the rollback are charged to the critical path.
  void setDeployFaultHook(std::function<bool(sim::LoopId)> Hook);

  /// Removes the trace from \p L (no-op if none).
  void unpatch(sim::LoopId L);

  /// Removes every deployed trace (the paper's modified RTO-ORIG unpatches
  /// all traces on a global phase change).
  void unpatchAll();

  /// Re-evaluates every deployed trace against the loop behaviour active
  /// *now* and updates the engine's rate factors. Call once per interval.
  void refresh();

  /// Returns how many consecutive refreshes loop \p L's trace has been
  /// harmful (factor < 1). 0 when not deployed or not harmful.
  unsigned harmfulStreak(sim::LoopId L) const { return HarmStreak[L]; }

  /// Returns the number of patch operations performed.
  std::uint64_t patches() const { return Patches; }
  /// Returns the number of unpatch operations performed.
  std::uint64_t unpatches() const { return Unpatches; }
  /// Returns the number of deployments failed by the fault hook (each one
  /// fully rolled back; not counted in \ref patches).
  std::uint64_t failedPatches() const { return FailedPatches; }

private:
  /// Checkpointing serializes the ledger (training, streaks, counters);
  /// engine rate factors resync on the next refresh()
  /// (persist/StateCodec.h).
  friend class persist::StateCodec;

  /// Returns the profile of \p L active in the engine's current mix, or
  /// std::nullopt when the loop is not part of it.
  std::optional<sim::ProfileId> activeProfile(sim::LoopId L) const;

  sim::Engine &Eng;
  const OptimizationModel &Model;
  double PatchOverheadCycles;
  double PrefetchMissCover;
  std::vector<std::optional<sim::ProfileId>> Trained; // per LoopId
  std::vector<unsigned> HarmStreak;
  std::function<bool(sim::LoopId)> DeployFaultHook;
  std::uint64_t Patches = 0;
  std::uint64_t Unpatches = 0;
  std::uint64_t FailedPatches = 0;
};

} // namespace regmon::rto

#endif // REGMON_RTO_TRACEDEPLOYMENTS_H
