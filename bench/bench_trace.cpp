//===- bench/bench_trace.cpp - Flight-recorder overhead -------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the flight recorder costs in its recommended deployment:
// a `regmon-cli record`-shaped run (simulate + sample + submit from one
// producer, round-robin across 8 streams into a 4-worker service; the
// single-threaded submission is what makes the captured trace
// byte-deterministic, see DESIGN.md section 15). Bare and recorded
// rounds run interleaved; the per-sample record cost is the wall-clock
// delta of the minima divided by the samples captured.
//
// The acceptance bar is <5% of the monitored program's time. The paper's
// denominator is the running program, which spends one sampling period
// (45K cycles, ~15us at a conservative 3GHz) between samples; the
// simulator fast-forwards that to ~0.1us, so raw wall-clock ratios
// against the sim overstate the recorder by two orders of magnitude.
// The gate is therefore record_ns_per_sample < 5% of the inter-sample
// interval; the raw sim-denominated ratios (end-to-end and the
// bench_service_throughput-style pure-ingest re-submission) are emitted
// ungated as sizing context.
//
// The run then replays the captured trace through a fresh Inline service
// and cross-checks the replay driver's accounting: every submitted batch
// must apply with zero divergence and zero append failures. Emits JSON
// on stdout for the BENCH_trace.json CI artifact; exits nonzero when
// replay fails or (in full mode) the per-sample gate does. `--smoke`
// shrinks the workload for CI and skips the wall-clock gate -- smoke
// spans are too short to time.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "sampling/Sampler.h"
#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "trace/Recorder.h"
#include "trace/Replay.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

namespace {

constexpr std::size_t StreamCount = 8;
constexpr std::size_t Workers = 4;
constexpr Cycles Period = 45'000;

struct Params {
  std::size_t PipelineBuffer;    ///< Sampler buffer for the end-to-end runs.
  std::size_t PipelineIntervals; ///< Intervals per stream, end-to-end.
  std::size_t PipelineRounds;
  std::size_t IngestBuffer;    ///< Sampler buffer for the ingest-only runs.
  std::size_t IngestIntervals; ///< Intervals per stream, ingest-only.
  std::size_t IngestReps;      ///< Re-submissions of the ingest set.
  std::size_t IngestRounds;
};

constexpr Params FullParams = {2032, 16, 5, 256, 64, 8, 5};
constexpr Params SmokeParams = {256, 4, 2, 256, 8, 1, 2};

service::ServiceConfig serviceConfig() {
  return {Workers, /*QueueCapacity=*/64, service::OverflowPolicy::Block,
          /*ValidateBatches=*/true, {}};
}

/// Opens \p Recorder on \p TracePath (fresh) and attaches it, or exits.
void attachFreshRecorder(service::MonitorService &Service,
                         trace::TraceRecorder &Recorder,
                         const std::string &TracePath) {
  std::remove(TracePath.c_str());
  if (!Recorder.open(TracePath).Ok) {
    std::fprintf(stderr, "error: cannot open trace '%s'\n",
                 TracePath.c_str());
    std::exit(1);
  }
  Service.attachRecorder(Recorder);
}

struct RunOutput {
  double Seconds = 0;
  std::uint64_t Batches = 0;
  std::uint64_t Samples = 0;
  std::uint64_t TraceRecords = 0;
  std::uint64_t TraceBytes = 0;
  std::uint64_t AppendFailures = 0;
};

void finishRecorder(trace::TraceRecorder &Recorder, RunOutput &Out) {
  Out.TraceRecords = Recorder.recordsWritten();
  Out.TraceBytes = Recorder.bytesWritten();
  Out.AppendFailures = Recorder.appendFailures();
  if (!Recorder.close()) {
    std::fprintf(stderr, "error: recorder close failed\n");
    std::exit(1);
  }
}

/// The `record` deployment end to end: one producer simulates each
/// stream, samples it, and submits interval by interval. The timed span
/// covers the whole monitored run -- the denominator an operator's "what
/// does recording cost me" question actually has.
RunOutput runPipeline(const Params &P, const std::string &TracePath) {
  std::vector<std::unique_ptr<workloads::Workload>> Loads;
  service::MonitorService Service(serviceConfig());
  std::vector<std::unique_ptr<sim::ProgramCodeMap>> Maps;
  for (std::size_t I = 0; I < StreamCount; ++I) {
    Loads.push_back(std::make_unique<workloads::Workload>(
        workloads::make("synthetic.periodic")));
    Maps.push_back(std::make_unique<sim::ProgramCodeMap>(Loads.back()->Prog));
    Service.addStream(*Maps.back());
  }
  trace::TraceRecorder Recorder;
  if (!TracePath.empty())
    attachFreshRecorder(Service, Recorder, TracePath);
  Service.start();

  RunOutput Out;
  Out.Seconds = timeSeconds([&] {
    for (service::StreamId Id = 0; Id < StreamCount; ++Id) {
      sim::Engine Engine(Loads[Id]->Prog, Loads[Id]->Script, BenchSeed + Id);
      sampling::Sampler Sampler(Engine, {Period, P.PipelineBuffer});
      const std::vector<std::vector<Sample>> Intervals =
          Sampler.collectIntervals(P.PipelineIntervals);
      for (const std::vector<Sample> &Interval : Intervals) {
        Service.submit({Id, Interval});
        ++Out.Batches;
        Out.Samples += Interval.size();
      }
    }
    Service.stop();
  });

  if (!TracePath.empty())
    finishRecorder(Recorder, Out);
  return Out;
}

struct RecordedStream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

std::vector<RecordedStream> recordStreams(const Params &P) {
  std::vector<RecordedStream> Streams;
  Streams.reserve(StreamCount);
  for (std::size_t I = 0; I < StreamCount; ++I) {
    RecordedStream S;
    S.W = std::make_unique<workloads::Workload>(
        workloads::make("synthetic.periodic"));
    S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
    sim::Engine Engine(S.W->Prog, S.W->Script, BenchSeed + I);
    sampling::Sampler Sampler(Engine, {Period, P.IngestBuffer});
    S.Intervals = Sampler.collectIntervals(P.IngestIntervals);
    Streams.push_back(std::move(S));
  }
  return Streams;
}

/// Ingest-only: re-submits the pre-collected interval set, round-robin
/// from one producer. Pure service cost, no simulation in the span.
RunOutput runIngest(const std::vector<RecordedStream> &Streams,
                    const Params &P, const std::string &TracePath) {
  service::MonitorService Service(serviceConfig());
  for (const RecordedStream &S : Streams)
    Service.addStream(*S.Map);
  trace::TraceRecorder Recorder;
  if (!TracePath.empty())
    attachFreshRecorder(Service, Recorder, TracePath);
  Service.start();

  std::size_t MaxIntervals = 0;
  for (const RecordedStream &S : Streams)
    MaxIntervals = std::max(MaxIntervals, S.Intervals.size());

  RunOutput Out;
  Out.Seconds = timeSeconds([&] {
    for (std::size_t Rep = 0; Rep < P.IngestReps; ++Rep)
      for (std::size_t I = 0; I < MaxIntervals; ++I)
        for (service::StreamId Id = 0; Id < Streams.size(); ++Id)
          if (I < Streams[Id].Intervals.size()) {
            Service.submit({Id, Streams[Id].Intervals[I]});
            ++Out.Batches;
          }
    Service.stop();
  });

  if (!TracePath.empty())
    finishRecorder(Recorder, Out);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  const Params P = Smoke ? SmokeParams : FullParams;

  const char *Tmp = std::getenv("TMPDIR");
  const std::string TracePath = std::string(Tmp ? Tmp : "/tmp") +
                                "/regmon_bench_trace_" +
                                std::to_string(::getpid()) + ".bin";

  // Interleave bare and recorded rounds so drift lands on both sides
  // equally; keep the minimum of each (the least contaminated sample).
  double PipeBareMin = 0, PipeRecMin = 0;
  RunOutput LastPipeRec;
  for (std::size_t Round = 0; Round < P.PipelineRounds; ++Round) {
    const RunOutput Bare = runPipeline(P, "");
    const RunOutput Rec = runPipeline(P, TracePath);
    if (Round == 0 || Bare.Seconds < PipeBareMin)
      PipeBareMin = Bare.Seconds;
    if (Round == 0 || Rec.Seconds < PipeRecMin)
      PipeRecMin = Rec.Seconds;
    LastPipeRec = Rec;
  }

  // Replay the last captured trace: an incident trace that cannot be
  // replayed is dead weight, so this is a hard gate in both modes.
  std::vector<std::unique_ptr<workloads::Workload>> Loads;
  std::vector<std::unique_ptr<sim::ProgramCodeMap>> Maps;
  service::ServiceConfig ReplayCfg = serviceConfig();
  ReplayCfg.Inline = true;
  service::MonitorService Replayer(ReplayCfg);
  for (std::size_t I = 0; I < StreamCount; ++I) {
    Loads.push_back(std::make_unique<workloads::Workload>(
        workloads::make("synthetic.periodic")));
    Maps.push_back(std::make_unique<sim::ProgramCodeMap>(Loads.back()->Prog));
    Replayer.addStream(*Maps.back());
  }
  trace::FileReplay Replayed;
  const double ReplaySeconds = timeSeconds(
      [&] { Replayed = trace::replayTraceFile(TracePath, Replayer); });
  const bool ReplayOk =
      Replayed.Replay.Ok &&
      Replayed.Replay.BatchesApplied == LastPipeRec.Batches &&
      LastPipeRec.AppendFailures == 0;
  std::remove(TracePath.c_str());

  // Ingest-only context numbers (ungated, see the file comment).
  const std::vector<RecordedStream> Streams = recordStreams(P);
  double IngestBareMin = 0, IngestRecMin = 0;
  for (std::size_t Round = 0; Round < P.IngestRounds; ++Round) {
    const RunOutput Bare = runIngest(Streams, P, "");
    const RunOutput Rec = runIngest(Streams, P, TracePath);
    if (Round == 0 || Bare.Seconds < IngestBareMin)
      IngestBareMin = Bare.Seconds;
    if (Round == 0 || Rec.Seconds < IngestRecMin)
      IngestRecMin = Rec.Seconds;
  }
  std::remove(TracePath.c_str());

  const double RecordOverhead = (PipeRecMin / PipeBareMin - 1.0) * 100.0;
  const double IngestOverhead = (IngestRecMin / IngestBareMin - 1.0) * 100.0;
  // The gated number: recorder nanoseconds per captured sample against
  // the monitored program's inter-sample time (one sampling period at a
  // conservative 3GHz -- see the file comment).
  const std::uint64_t TotalSamples = LastPipeRec.Samples;
  const double RecordNsPerSample =
      std::max(0.0, PipeRecMin - PipeBareMin) * 1e9 /
      static_cast<double>(TotalSamples);
  const double IntervalNs = static_cast<double>(Period) / 3.0;
  const double MonitoredOverhead = RecordNsPerSample / IntervalNs * 100.0;
  const bool WithinBudget = MonitoredOverhead < 5.0;

  std::printf(
      "{\n"
      "  \"bench\": \"trace_overhead\",\n"
      "  \"mode\": \"%s\",\n"
      "  \"workload\": \"synthetic.periodic\",\n"
      "  \"streams\": %zu,\n"
      "  \"workers\": %zu,\n"
      "  \"record_batches\": %llu,\n"
      "  \"record_samples\": %llu,\n"
      "  \"record_bare_seconds_min\": %.6f,\n"
      "  \"record_recorded_seconds_min\": %.6f,\n"
      "  \"record_ns_per_sample\": %.1f,\n"
      "  \"monitored_interval_ns\": %.1f,\n"
      "  \"record_overhead_vs_monitored_percent\": %.3f,\n"
      "  \"record_overhead_budget_percent\": 5.0,\n"
      "  \"within_budget\": %s,\n"
      "  \"record_overhead_vs_sim_percent\": %.3f,\n"
      "  \"ingest_bare_seconds_min\": %.6f,\n"
      "  \"ingest_recorded_seconds_min\": %.6f,\n"
      "  \"ingest_overhead_percent\": %.3f,\n"
      "  \"trace_records\": %llu,\n"
      "  \"trace_bytes\": %llu,\n"
      "  \"append_failures\": %llu,\n"
      "  \"replay_seconds\": %.6f,\n"
      "  \"replay_batches_applied\": %llu,\n"
      "  \"replay_ok\": %s\n"
      "}\n",
      Smoke ? "smoke" : "full", StreamCount, Workers,
      static_cast<unsigned long long>(LastPipeRec.Batches),
      static_cast<unsigned long long>(TotalSamples), PipeBareMin, PipeRecMin,
      RecordNsPerSample, IntervalNs, MonitoredOverhead,
      WithinBudget ? "true" : "false", RecordOverhead, IngestBareMin,
      IngestRecMin, IngestOverhead,
      static_cast<unsigned long long>(LastPipeRec.TraceRecords),
      static_cast<unsigned long long>(LastPipeRec.TraceBytes),
      static_cast<unsigned long long>(LastPipeRec.AppendFailures),
      ReplaySeconds,
      static_cast<unsigned long long>(Replayed.Replay.BatchesApplied),
      ReplayOk ? "true" : "false");

  if (!ReplayOk)
    return 1;
  return (Smoke || WithinBudget) ? 0 : 1;
}
