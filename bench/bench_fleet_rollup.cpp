//===- bench/bench_fleet_rollup.cpp - Fleet aggregation cost gates --------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Gates the cost of the hierarchical fleet rollup (fleet/FleetTree.h)
// across a leaves x tree-depth sweep. Every shape runs a fault-free
// deterministic FleetSim, so the byte counts are exact and replayable;
// only the latencies are wall-clock.
//
//  1. rollup latency: building the root's FleetView (coverage + staleness
//     arithmetic + the merged rollup) must stay cheap enough to take on
//     every scrape. Gate: <= 100 us per leaf at every swept shape, which
//     is generous for the intended O(leaves) reduction but fails fast on
//     an accidental quadratic blowup.
//  2. merged bytes per leaf: the encoded root state -- what a parent
//     re-transmits per epoch -- must stay bounded per leaf regardless of
//     tree shape. Gate: <= 2048 bytes/leaf (a canonical entry is ~600
//     bytes: stats + stable-fraction histogram + a 16-entry top-K).
//  3. transport bytes per leaf-epoch-level: total link traffic divided by
//     (leaves x epochs x levels); each leaf's entry crosses one link per
//     level, so this normalization is shape-independent. Same per-leaf
//     bound as gate 2.
//
// Fault-free runs must also report exact full coverage (coverage 1.0,
// staleness 0) at every shape -- a correctness precondition checked
// alongside the gates, since a view that silently drops leaves would
// also look "fast".
//
// Emits JSON on stdout for the BENCH_fleet.json CI artifact; the human
// summary goes to stderr. `--smoke` shrinks the sweep and epoch count
// for CI while keeping all gates enforced. Exit 0 iff every gate holds.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "fleet/Codec.h"
#include "fleet/FleetFaultPlan.h"
#include "fleet/FleetTree.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

namespace {

/// One swept tree shape. Fanout is chosen per row so the sweep covers
/// depth 1 (every leaf under the root) through depth 4.
struct Shape {
  std::uint32_t Leaves = 0;
  std::uint32_t Fanout = 0;
};

struct Row {
  Shape S;
  std::uint32_t Levels = 0;
  std::uint64_t Epochs = 0;
  double EpochMs = 0;      ///< Full epoch (ingest + emit + merge).
  double RollupUs = 0;     ///< One FleetView build at the root.
  std::uint64_t StateBytes = 0; ///< Encoded root FleetSummary.
  double StateBytesPerLeaf = 0;
  double WireBytesPerLeafEpochLevel = 0;
  bool FullCoverage = false;
};

/// Rollup latency budget, per leaf: generous for O(leaves), fatal for
/// O(leaves^2).
constexpr double RollupBudgetUsPerLeaf = 100.0;
/// Encoded per-leaf footprint bound, shared by gates 2 and 3.
constexpr double BytesPerLeafBudget = 2048.0;

Row runShape(Shape S, std::uint64_t Epochs, std::size_t ViewIters) {
  fleet::FleetSimConfig Cfg;
  Cfg.Leaves = S.Leaves;
  Cfg.Fanout = S.Fanout;
  Cfg.StreamsPerLeaf = 1;
  Cfg.BatchesPerEpoch = 1;
  Cfg.Seed = 17;
  // Default FleetFaultConfig injects nothing and the plan seed is inert
  // without rates, so the run is the fault-free reference.
  fleet::FleetSim Sim(Cfg, fleet::FleetFaultPlan(/*PlanSeed=*/1));

  Row R;
  R.S = S;
  R.Levels = Sim.topology().levels();
  R.Epochs = Epochs;

  const double RunSec = timeSeconds([&] { Sim.run(Epochs); });
  R.EpochMs = RunSec * 1e3 / static_cast<double>(Epochs);

  // Time the view path alone: repeated rollups over the settled root
  // state, the scrape-time cost a metrics endpoint pays.
  std::uint64_t Acc = 0; // consumed so the timed views cannot be dropped
  const double ViewSec = timeSeconds([&] {
    for (std::size_t I = 0; I < ViewIters; ++I)
      Acc += Sim.view().Rollup.Totals.TotalSamples;
  });
  R.RollupUs = ViewSec * 1e6 / static_cast<double>(ViewIters);

  const fleet::FleetView V = Sim.view();
  R.FullCoverage = Acc > 0 && V.LeavesPresent == S.Leaves &&
                   V.LeavesExpired == 0 && V.MaxStaleness == 0 &&
                   V.Rollup.Totals.Streams == S.Leaves;

  R.StateBytes = fleet::Codec::encodeState(Sim.rootState()).size();
  R.StateBytesPerLeaf =
      static_cast<double>(R.StateBytes) / static_cast<double>(S.Leaves);
  R.WireBytesPerLeafEpochLevel =
      static_cast<double>(Sim.bytesSent()) /
      static_cast<double>(static_cast<std::uint64_t>(S.Leaves) * Epochs *
                          R.Levels);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  const std::uint64_t Epochs = Smoke ? 4 : 8;
  const std::size_t ViewIters = Smoke ? 50 : 400;

  std::vector<Shape> Sweep = {{4, 4}, {8, 2}, {16, 4}};
  if (!Smoke) {
    Sweep.push_back({16, 2});
    Sweep.push_back({32, 4});
    Sweep.push_back({32, 2});
  }

  std::vector<Row> Rows;
  Rows.reserve(Sweep.size());
  for (const Shape &S : Sweep)
    Rows.push_back(runShape(S, Epochs, ViewIters));

  bool GateRollup = true, GateState = true, GateWire = true,
       Coverage = true;
  for (const Row &R : Rows) {
    GateRollup = GateRollup &&
                 R.RollupUs <= RollupBudgetUsPerLeaf *
                                   static_cast<double>(R.S.Leaves);
    GateState = GateState && R.StateBytesPerLeaf <= BytesPerLeafBudget;
    GateWire = GateWire && R.WireBytesPerLeafEpochLevel <= BytesPerLeafBudget;
    Coverage = Coverage && R.FullCoverage;
  }
  const bool Pass = GateRollup && GateState && GateWire && Coverage;

  std::fprintf(stderr, "[fleet] mode=%s epochs=%llu\n", Smoke ? "smoke" : "full",
               static_cast<unsigned long long>(Epochs));
  for (const Row &R : Rows)
    std::fprintf(stderr,
                 "  leaves=%2u fanout=%u levels=%u: epoch %.2f ms, "
                 "rollup %.1f us, state %.0f B/leaf, wire %.0f "
                 "B/leaf-epoch-level, coverage %s\n",
                 R.S.Leaves, R.S.Fanout, R.Levels, R.EpochMs, R.RollupUs,
                 R.StateBytesPerLeaf, R.WireBytesPerLeafEpochLevel,
                 R.FullCoverage ? "full" : "DEGRADED");
  std::fprintf(stderr,
               "  gates: rollup <= %.0f us/leaf: %s, state <= %.0f B/leaf: "
               "%s, wire <= %.0f B/leaf: %s, coverage exact: %s\n",
               RollupBudgetUsPerLeaf, GateRollup ? "pass" : "FAIL",
               BytesPerLeafBudget, GateState ? "pass" : "FAIL",
               BytesPerLeafBudget, GateWire ? "pass" : "FAIL",
               Coverage ? "pass" : "FAIL");

  std::printf("{\n"
              "  \"bench\": \"fleet_rollup\",\n"
              "  \"mode\": \"%s\",\n"
              "  \"epochs\": %llu,\n"
              "  \"sweep\": [\n",
              Smoke ? "smoke" : "full",
              static_cast<unsigned long long>(Epochs));
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::printf("    {\"leaves\": %u, \"fanout\": %u, \"levels\": %u, "
                "\"epoch_ms\": %.3f, \"rollup_us\": %.2f, "
                "\"state_bytes\": %llu, \"state_bytes_per_leaf\": %.1f, "
                "\"wire_bytes_per_leaf_epoch_level\": %.1f, "
                "\"full_coverage\": %s}%s\n",
                R.S.Leaves, R.S.Fanout, R.Levels, R.EpochMs, R.RollupUs,
                static_cast<unsigned long long>(R.StateBytes),
                R.StateBytesPerLeaf, R.WireBytesPerLeafEpochLevel,
                R.FullCoverage ? "true" : "false",
                I + 1 < Rows.size() ? "," : "");
  }
  std::printf("  ],\n"
              "  \"rollup_budget_us_per_leaf\": %.0f,\n"
              "  \"bytes_per_leaf_budget\": %.0f,\n"
              "  \"rollup_gate\": %s,\n"
              "  \"state_bytes_gate\": %s,\n"
              "  \"wire_bytes_gate\": %s,\n"
              "  \"coverage_exact\": %s,\n"
              "  \"pass\": %s\n"
              "}\n",
              RollupBudgetUsPerLeaf, BytesPerLeafBudget,
              GateRollup ? "true" : "false", GateState ? "true" : "false",
              GateWire ? "true" : "false", Coverage ? "true" : "false",
              Pass ? "true" : "false");

  return Pass ? 0 : 1;
}
