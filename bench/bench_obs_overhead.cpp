//===- bench/bench_obs_overhead.cpp - Observability overhead --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the obs layer costs on the exact workload of
// bench_service_throughput: 8 recorded streams, 4 repetitions, lossless
// backpressure, 4 workers. Two configurations run interleaved -- bare
// (no observability) and instrumented (full metric catalogue + event
// tracer) -- and the minimum wall clock of each over several rounds is
// compared. The acceptance bar is <3% overhead.
//
// The run also proves byte-stable export: two identical instrumented runs
// must produce byte-identical Prometheus and JSON documents (events
// compare through the sorted trace; arrival order across worker threads
// is scheduling-dependent, the sorted order is not).
//
// Emits JSON on stdout for the BENCH_obs.json CI artifact.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "obs/Export.h"
#include "sampling/Sampler.h"
#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

namespace {

// bench_service_throughput's topology, but with doubled repetitions and
// more rounds: each timed span is ~0.35s, long enough that thread spawn
// and scheduler noise stop dominating a <3% comparison.
constexpr std::size_t StreamCount = 8;
constexpr std::size_t Repetitions = 8;
constexpr std::size_t Workers = 4;
constexpr std::size_t Rounds = 7;
constexpr Cycles Period = 45'000;

struct RecordedStream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

std::vector<RecordedStream> recordStreams() {
  std::vector<RecordedStream> Streams;
  Streams.reserve(StreamCount);
  for (std::size_t I = 0; I < StreamCount; ++I) {
    RecordedStream S;
    S.W = std::make_unique<workloads::Workload>(
        workloads::make("synthetic.periodic"));
    S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
    sim::Engine Engine(S.W->Prog, S.W->Script, BenchSeed + I);
    sampling::Sampler Sampler(Engine, {Period, 2032});
    S.Intervals = Sampler.collectIntervals();
    Streams.push_back(std::move(S));
  }
  return Streams;
}

struct RunOutput {
  double Seconds = 0;
  std::string Prometheus;
  std::string Json;
};

/// Pushes the full batch set through a fresh service. When \p Instrument
/// is set, the complete obs catalogue is attached and the exported
/// documents are returned for the byte-stability check.
RunOutput runConfig(const std::vector<RecordedStream> &Streams,
                    bool Instrument) {
  service::MonitorService Service(
      {Workers, /*QueueCapacity=*/64, service::OverflowPolicy::Block,
       /*ValidateBatches=*/true, {}});
  for (const RecordedStream &S : Streams)
    Service.addStream(*S.Map);

  obs::MetricsRegistry Registry;
  obs::EventTracer Tracer(1 << 16);
  if (Instrument)
    Service.attachObservability(Registry, &Tracer);
  Service.start();

  RunOutput Out;
  Out.Seconds = timeSeconds([&] {
    std::vector<std::thread> Producers;
    Producers.reserve(Streams.size());
    for (service::StreamId Id = 0; Id < Streams.size(); ++Id)
      Producers.emplace_back([&, Id] {
        for (std::size_t Rep = 0; Rep < Repetitions; ++Rep)
          for (const std::vector<Sample> &Interval : Streams[Id].Intervals)
            Service.submit({Id, Interval});
      });
    for (std::thread &T : Producers)
      T.join();
    Service.stop();
  });

  if (Instrument) {
    Out.Prometheus = obs::exportPrometheus(Registry);
    Out.Json = obs::exportJson(Registry, &Tracer);
  }
  return Out;
}

} // namespace

int main() {
  const std::vector<RecordedStream> Streams = recordStreams();
  std::uint64_t TotalBatches = 0;
  for (const RecordedStream &S : Streams)
    TotalBatches += S.Intervals.size() * Repetitions;

  // Interleave bare and instrumented rounds so thermal / frequency drift
  // lands on both sides equally; keep the minimum of each (the least
  // noise-contaminated observation).
  double BareMin = 0, InstrMin = 0;
  RunOutput FirstInstr, LastInstr;
  for (std::size_t Round = 0; Round < Rounds; ++Round) {
    const RunOutput Bare = runConfig(Streams, /*Instrument=*/false);
    RunOutput Instr = runConfig(Streams, /*Instrument=*/true);
    if (Round == 0 || Bare.Seconds < BareMin)
      BareMin = Bare.Seconds;
    if (Round == 0 || Instr.Seconds < InstrMin)
      InstrMin = Instr.Seconds;
    if (Round == 0)
      FirstInstr = Instr;
    LastInstr = std::move(Instr);
  }

  const double OverheadPercent = (InstrMin / BareMin - 1.0) * 100.0;
  const bool PromStable = FirstInstr.Prometheus == LastInstr.Prometheus;
  const bool JsonStable = FirstInstr.Json == LastInstr.Json;

  std::printf(
      "{\n"
      "  \"bench\": \"obs_overhead\",\n"
      "  \"workload\": \"synthetic.periodic\",\n"
      "  \"streams\": %zu,\n"
      "  \"workers\": %zu,\n"
      "  \"batches\": %llu,\n"
      "  \"rounds\": %zu,\n"
      "  \"bare_seconds_min\": %.6f,\n"
      "  \"instrumented_seconds_min\": %.6f,\n"
      "  \"overhead_percent\": %.3f,\n"
      "  \"overhead_budget_percent\": 3.0,\n"
      "  \"within_budget\": %s,\n"
      "  \"prometheus_bytes\": %zu,\n"
      "  \"prometheus_byte_stable\": %s,\n"
      "  \"json_byte_stable\": %s\n"
      "}\n",
      StreamCount, Workers, static_cast<unsigned long long>(TotalBatches),
      Rounds, BareMin, InstrMin, OverheadPercent,
      OverheadPercent < 3.0 ? "true" : "false",
      LastInstr.Prometheus.size(), PromStable ? "true" : "false",
      JsonStable ? "true" : "false");

  return (PromStable && JsonStable) ? 0 : 1;
}
