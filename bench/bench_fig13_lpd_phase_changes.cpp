//===- bench_fig13_lpd_phase_changes.cpp - Paper Fig. 13 ------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 13: "Sensitivity to sampling period using local phase detection" --
// per-region local phase changes for the benchmarks with heavy GPD churn
// at small periods. Expected shape: near-zero counts that barely move with
// the sampling period, except (a) one short-lived unstable gap region
// with ~100+ changes at 45K and (b) 188.ammp's huge region whose r hovers
// just below the threshold at small periods (the documented aberration).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/TextTable.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 13] Per-region local phase changes vs sampling "
              "period\n\n");
  TextTable Table;
  Table.header({"benchmark", "region", "45K", "450K", "900K"});

  for (const std::string &Name : workloads::fig13Names()) {
    // Region identity is the (start, end) bounds; collect counts per
    // period, keyed by region name, ordered by 45K sample volume.
    std::map<std::string, std::array<std::uint64_t, 3>> Counts;
    std::vector<std::string> Order;
    for (std::size_t P = 0; P < 3; ++P) {
      MonitorRun Run(workloads::make(Name), SweepPeriods[P]);
      for (core::RegionId Id : Run.regionsBySamples()) {
        const std::string &RName = Run.monitor().regions()[Id].Name;
        auto [It, Inserted] = Counts.try_emplace(RName);
        if (Inserted)
          It->second = {};
        It->second[P] = Run.monitor().stats(Id).PhaseChanges;
        if (P == 0)
          Order.push_back(RName);
      }
    }
    // Regions formed only at larger periods go after the 45K ordering.
    for (const auto &[RName, Row] : Counts)
      if (std::find(Order.begin(), Order.end(), RName) == Order.end())
        Order.push_back(RName);

    std::size_t Rank = 1;
    for (const std::string &RName : Order) {
      const auto &Row = Counts[RName];
      std::string Label = "r";
      Label += std::to_string(Rank);
      Label += " ";
      Label += RName;
      Table.row({Rank == 1 ? Name : "", Label, TextTable::count(Row[0]),
                 TextTable::count(Row[1]), TextTable::count(Row[2])});
      ++Rank;
    }
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
