//===- bench/RegionChart.h - Shared region-chart rendering -----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper's "region chart" (per-region samples per interval,
/// stacked, with the GPD phase line on top) from a completed MonitorRun.
/// Shared by the Fig. 2 / Fig. 5 / Fig. 9 benches.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_BENCH_REGIONCHART_H
#define REGMON_BENCH_REGIONCHART_H

#include "BenchSupport.h"

#include <string>

namespace regmon::bench {

/// Renders the stacked region chart of \p Run, downsampled to at most
/// \p Columns terminal columns, GPD unstable overlay included.
std::string renderRegionChart(const MonitorRun &Run,
                              std::size_t Columns = 100);

/// Prints one row per interval bucket: interval range, per-region sample
/// counts, and the GPD state -- the numeric series behind the chart.
std::string renderRegionSeries(const MonitorRun &Run,
                               std::size_t Buckets = 24);

} // namespace regmon::bench

#endif // REGMON_BENCH_REGIONCHART_H
