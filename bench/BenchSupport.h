//===- bench/BenchSupport.h - Shared experiment runners ---------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the figure-reproduction benches: run a workload
/// under the sampling front-end once and expose detector/monitor results,
/// or record the raw sample stream for cost measurements.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_BENCH_BENCHSUPPORT_H
#define REGMON_BENCH_BENCHSUPPORT_H

#include "core/RegionMonitor.h"
#include "gpd/CentroidPhaseDetector.h"
#include "sim/ProgramCodeMap.h"
#include "workloads/Workloads.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace regmon::bench {

/// The paper's three Figs. 3/4/13/14 sampling periods (cycles/interrupt).
inline constexpr Cycles SweepPeriods[] = {45'000, 450'000, 900'000};
/// The paper's Fig. 17 sampling periods.
inline constexpr Cycles RtoPeriods[] = {100'000, 800'000, 1'500'000};
/// Default seed for all figure reproductions.
inline constexpr std::uint64_t BenchSeed = 1;

/// Result of one global-phase-detection run.
struct GpdRun {
  std::uint64_t PhaseChanges = 0;
  double StableFraction = 0;
  std::uint64_t Intervals = 0;
};

/// Runs \p W under the centroid detector at \p Period.
GpdRun runGpd(const workloads::Workload &W, Cycles Period,
              std::uint64_t Seed = BenchSeed);

/// One full region-monitoring run; owns the workload and the monitor so
/// results can be inspected after the run.
class MonitorRun {
public:
  /// Runs \p W under a RegionMonitor (and, in parallel, a GPD detector for
  /// overlays) at \p Period.
  MonitorRun(workloads::Workload W, Cycles Period,
             core::RegionMonitorConfig Config = {},
             std::uint64_t Seed = BenchSeed);

  const workloads::Workload &workload() const { return *W; }
  const core::RegionMonitor &monitor() const { return *Monitor; }
  const gpd::CentroidPhaseDetector &gpdDetector() const { return *Gpd; }

  /// Returns active region ids ordered by descending total samples -- the
  /// paper's "r1, r2, ..." numbering of regions selected by the optimizer.
  std::vector<core::RegionId> regionsBySamples() const;

private:
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::unique_ptr<core::RegionMonitor> Monitor;
  std::unique_ptr<gpd::CentroidPhaseDetector> Gpd;
};

/// A pre-recorded sample stream (one vector per interval), used to time
/// detector implementations on identical inputs.
struct SampleStream {
  std::vector<std::vector<Sample>> Intervals;
  /// Total simulated cycles of the recorded run (for overhead ratios).
  Cycles ProgramCycles = 0;
};

/// Records the full sample stream of \p W at \p Period.
SampleStream recordStream(const workloads::Workload &W, Cycles Period,
                          std::uint64_t Seed = BenchSeed);

/// Returns the wall-clock seconds consumed by \p Fn (monotonic clock).
double timeSeconds(const std::function<void()> &Fn);

} // namespace regmon::bench

#endif // REGMON_BENCH_BENCHSUPPORT_H
