//===- bench_chaos_resilience.cpp - Phase stability under faults ----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Robustness experiment (not a paper figure): how many *spurious* phase
// changes does each detector report when the sample stream degrades the
// way real HPM front-ends do -- a few percent of samples lost, a few
// percent of PCs corrupted into unmapped space, jittered periods and the
// odd truncated buffer?
//
// The mechanism under test: a wild PC lands far from every monitored
// region, so the region's per-instruction histogram barely moves and the
// local detectors stay put (the noise is absorbed as UCR). The centroid,
// being a *mean over the whole address space*, is yanked toward the
// corruption window by every wild sample -- the band of stability breaks
// and GPD thrashes. Expected shape: LPD's faulted phase-change count
// stays within ~2x of its clean count, GPD inflates much worse.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "faults/FaultPlan.h"
#include "support/TextTable.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

namespace {

/// "A few percent of everything": at most 5% loss/corruption plus mild
/// shape faults -- the acceptance envelope of this experiment.
faults::FaultConfig mildFaults() {
  faults::FaultConfig Cfg;
  Cfg.DropRate = 0.05;
  Cfg.CorruptRate = 0.05;
  Cfg.DuplicateRate = 0.02;
  Cfg.PeriodJitterFrac = 0.25;
  Cfg.TruncateRate = 0.05;
  return Cfg;
}

/// Degraded-mode monitor configuration: discount intervals and histograms
/// too thin to be evidence (see DESIGN.md section 9).
core::RegionMonitorConfig gatedConfig() {
  core::RegionMonitorConfig Cfg;
  Cfg.MinIntervalSamples = 64;
  Cfg.Lpd.MinObserveSamples = 16;
  return Cfg;
}

struct Counts {
  std::uint64_t Lpd = 0;
  std::uint64_t Gpd = 0;
};

/// Runs both detectors over \p Intervals and returns their phase-change
/// counts.
Counts runBoth(const workloads::Workload &W,
               const std::vector<std::vector<Sample>> &Intervals) {
  const sim::ProgramCodeMap Map(W.Prog);
  core::RegionMonitor Monitor(Map, gatedConfig());
  gpd::CentroidPhaseDetector Gpd;
  for (const std::vector<Sample> &Interval : Intervals) {
    Monitor.observeInterval(Interval);
    Gpd.observeInterval(Interval);
  }
  return {Monitor.totalPhaseChanges(), Gpd.phaseChanges()};
}

std::string ratio(std::uint64_t Faulted, std::uint64_t Clean) {
  if (Clean == 0)
    return Faulted == 0 ? "1.00x" : "inf";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2fx",
                static_cast<double>(Faulted) / static_cast<double>(Clean));
  return Buf;
}

} // namespace

int main() {
  std::printf("[chaos] Phase-change inflation under <=5%% sample "
              "loss/corruption (plan seed 1)\n\n");

  const std::vector<std::string> Names = {
      "synthetic.steady", "synthetic.periodic", "synthetic.bottleneck",
      "synthetic.pollution", "181.mcf", "187.facerec",
  };

  TextTable Table;
  Table.header({"workload", "detector", "clean", "faulted", "ratio"});

  Counts CleanTotal, FaultedTotal;
  const faults::FaultPlan Plan(/*PlanSeed=*/1, mildFaults());
  std::uint32_t StreamId = 0;
  for (const std::string &Name : Names) {
    const workloads::Workload W = workloads::make(Name);
    const SampleStream Stream = recordStream(W, /*Period=*/45'000);

    faults::StreamFaultInjector Inj = Plan.forStream(StreamId++);
    std::vector<std::vector<Sample>> Faulted;
    Faulted.reserve(Stream.Intervals.size());
    for (const std::vector<Sample> &Interval : Stream.Intervals)
      Faulted.push_back(Inj.apply(Interval));

    const Counts Clean = runBoth(W, Stream.Intervals);
    const Counts Dirty = runBoth(W, Faulted);
    CleanTotal.Lpd += Clean.Lpd;
    CleanTotal.Gpd += Clean.Gpd;
    FaultedTotal.Lpd += Dirty.Lpd;
    FaultedTotal.Gpd += Dirty.Gpd;

    Table.row({Name, "LPD", TextTable::count(Clean.Lpd),
               TextTable::count(Dirty.Lpd),
               ratio(Dirty.Lpd, Clean.Lpd)});
    Table.row({"", "GPD", TextTable::count(Clean.Gpd),
               TextTable::count(Dirty.Gpd),
               ratio(Dirty.Gpd, Clean.Gpd)});
  }
  Table.row({"TOTAL", "LPD", TextTable::count(CleanTotal.Lpd),
             TextTable::count(FaultedTotal.Lpd),
             ratio(FaultedTotal.Lpd, CleanTotal.Lpd)});
  Table.row({"", "GPD", TextTable::count(CleanTotal.Gpd),
             TextTable::count(FaultedTotal.Gpd),
             ratio(FaultedTotal.Gpd, CleanTotal.Gpd)});
  std::printf("%s\n", Table.render().c_str());

  // The claim this bench defends: under mild faults LPD stays within 2x
  // of its clean phase-change count while the centroid GPD inflates
  // worse. Exit non-zero when the shape breaks so CI notices.
  const bool LpdHolds = FaultedTotal.Lpd <= 2 * CleanTotal.Lpd;
  const double LpdInflation = CleanTotal.Lpd == 0
                                  ? 1.0
                                  : static_cast<double>(FaultedTotal.Lpd) /
                                        static_cast<double>(CleanTotal.Lpd);
  const double GpdInflation = CleanTotal.Gpd == 0
                                  ? 1.0
                                  : static_cast<double>(FaultedTotal.Gpd) /
                                        static_cast<double>(CleanTotal.Gpd);
  const bool GpdWorse = GpdInflation > LpdInflation;
  std::printf("verdict: LPD within 2x of clean: %s; GPD inflates worse "
              "than LPD: %s\n",
              LpdHolds ? "yes" : "NO", GpdWorse ? "yes" : "NO");
  return LpdHolds && GpdWorse ? 0 : 1;
}
