//===- bench_ablation_similarity.cpp - Cheaper similarity metrics ---------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation for the paper's section 5 future work: "investigate cheaper
// means of measuring similarity as the Pearson's metric involves time
// consuming calculations". Runs local phase detection with Pearson,
// cosine, and histogram-overlap similarity on three representative
// workloads and reports detection quality (per-region phase changes,
// stable time) plus the per-comparison cost of each metric.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "core/Similarity.h"
#include "support/Rng.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

namespace {

/// Mean nanoseconds per compare on a Bins-sized random histogram pair.
double nsPerCompare(const core::SimilarityMetric &Metric,
                    std::size_t Bins) {
  Rng Random(7);
  std::vector<std::uint32_t> A(Bins), B(Bins);
  for (std::size_t I = 0; I < Bins; ++I) {
    A[I] = static_cast<std::uint32_t>(Random.nextBelow(50));
    B[I] = static_cast<std::uint32_t>(Random.nextBelow(50));
  }
  constexpr int Reps = 20'000;
  double Sink = 0;
  const double Sec = timeSeconds([&] {
    for (int I = 0; I < Reps; ++I)
      Sink += Metric.compare(A, B);
  });
  // Keep the compiler from eliding the loop.
  if (Sink == 0.123456)
    std::printf("!");
  return Sec / Reps * 1e9;
}

} // namespace

int main() {
  std::printf("[ablation] Similarity metrics for local phase detection "
              "@ 45K\n\n");

  std::printf("per-comparison cost:\n");
  TextTable CostTable;
  CostTable.header({"metric", "ns @64 bins", "ns @1024 bins"});
  for (const core::SimilarityKind Kind :
       {core::SimilarityKind::Pearson, core::SimilarityKind::Cosine,
        core::SimilarityKind::Overlap}) {
    const auto Metric = core::makeSimilarity(Kind);
    CostTable.row({Metric->name(),
                   TextTable::num(nsPerCompare(*Metric, 64), 1),
                   TextTable::num(nsPerCompare(*Metric, 1024), 1)});
  }
  std::printf("%s\n", CostTable.render().c_str());

  std::printf("detection behaviour (total local changes / mean %% locally "
              "stable across regions):\n");
  TextTable Table;
  Table.header({"benchmark", "pearson", "cosine", "overlap"});
  for (const char *Name : {"181.mcf", "254.gap", "188.ammp"}) {
    std::vector<std::string> Row = {Name};
    for (const core::SimilarityKind Kind :
         {core::SimilarityKind::Pearson, core::SimilarityKind::Cosine,
          core::SimilarityKind::Overlap}) {
      core::RegionMonitorConfig Config;
      Config.Similarity = Kind;
      MonitorRun Run(workloads::make(Name), 45'000, Config);
      std::uint64_t Changes = 0;
      double StableAcc = 0;
      std::size_t N = 0;
      for (core::RegionId Id : Run.monitor().activeRegionIds()) {
        Changes += Run.monitor().stats(Id).PhaseChanges;
        StableAcc += Run.monitor().stats(Id).stableFraction();
        ++N;
      }
      Row.push_back(TextTable::count(Changes) + " / " +
                    TextTable::percent(N ? StableAcc / N : 0, 0));
    }
    Table.row(std::move(Row));
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
