//===- bench_fig08_pearson_properties.cpp - Paper Fig. 8 ------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 8: the two properties that make Pearson's r the right similarity
// metric for per-region histograms. Comparing against the original 10-bin
// distribution:
//
//  * shifting the bottleneck by ONE instruction -> r near 0 (the paper
//    reports -0.056): a real behaviour change is caught immediately;
//  * scaling every bin by a constant (more samples, same shape) ->
//    r near 1 (the paper reports 0.998): sampling-rate variation does NOT
//    fake a phase change.
//
//===----------------------------------------------------------------------===//

#include "core/Similarity.h"
#include "support/TextTable.h"

#include <cstdint>
#include <cstdio>
#include <vector>

using namespace regmon;

int main() {
  std::printf("[Fig. 8] Pearson r under bottleneck shift vs uniform "
              "scaling (10-instruction region)\n\n");

  // The paper's example shape: one dominant bottleneck instruction plus a
  // secondary hot instruction over a low background.
  const std::vector<std::uint32_t> Original = {10, 12, 9,  350, 11,
                                               14, 95, 10, 13,  11};

  // Bottleneck shifts right by one instruction slot.
  std::vector<std::uint32_t> Shifted(Original.size());
  for (std::size_t I = 0; I < Original.size(); ++I)
    Shifted[(I + 1) % Original.size()] = Original[I];

  // Same behaviour, ~30% more samples, small per-bin jitter.
  std::vector<std::uint32_t> Scaled(Original.size());
  for (std::size_t I = 0; I < Original.size(); ++I)
    Scaled[I] = static_cast<std::uint32_t>(Original[I] * 13 / 10) +
                static_cast<std::uint32_t>(I % 3);

  const core::PearsonSimilarity Pearson;
  TextTable Table;
  Table.header({"comparison", "r", "phase change at rt=0.8?"});
  const double RSelf = Pearson.compare(Original, Original);
  const double RShift = Pearson.compare(Original, Shifted);
  const double RScale = Pearson.compare(Original, Scaled);
  Table.row({"original vs original", TextTable::num(RSelf, 3),
             RSelf < 0.8 ? "YES" : "no"});
  Table.row({"shift bottleneck by 1 instr", TextTable::num(RShift, 3),
             RShift < 0.8 ? "YES" : "no"});
  Table.row({"more samples, same shape", TextTable::num(RScale, 3),
             RScale < 0.8 ? "YES" : "no"});
  std::printf("%s", Table.render().c_str());
  std::printf("\npaper reference: shift -> r = -0.056, scaled -> r = 0.998\n");
  return 0;
}
