//===- bench_fig17_rto_speedup.cpp - Paper Fig. 17 ------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 17: "Speedup of RTO-LPD over RTO-ORIG" for 181.mcf, 172.mgrid,
// 254.gap and 191.fma3d at sampling periods 100K / 800K / 1.5M, where
// RTO-ORIG is the centroid-gated optimizer modified to unpatch traces on a
// global phase change.
//
// Expected shape (paper): mcf's speedup grows with the sampling period to
// ~24% at 1.5M (GPD cannot stabilize through the periodic tail); gap's
// shrinks with the period (~9.5% at 100K down to ~5% at 1.5M); mgrid shows
// essentially no difference; LPD never loses meaningfully.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "rto/Harness.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 17] RTO-LPD speedup over RTO-ORIG\n\n");
  TextTable Table;
  Table.header({"benchmark", "period", "cycles ORIG", "cycles LPD",
                "ORIG stable%", "LPD stable%", "LPD speedup"});

  for (const std::string &Name : workloads::fig17Names()) {
    const workloads::Workload W = workloads::make(Name);
    const rto::OptimizationModel Model = W.model();
    bool First = true;
    for (Cycles Period : RtoPeriods) {
      rto::RtoConfig Config;
      Config.Sampling.PeriodCycles = Period;
      const rto::RtoResult Orig =
          rto::runOriginal(W.Prog, W.Script, Model, BenchSeed, Config);
      const rto::RtoResult Lpd =
          rto::runLocal(W.Prog, W.Script, Model, BenchSeed, Config);
      Table.row({First ? Name : "", TextTable::count(Period),
                 TextTable::count(Orig.TotalCycles),
                 TextTable::count(Lpd.TotalCycles),
                 TextTable::percent(Orig.StableFraction),
                 TextTable::percent(Lpd.StableFraction),
                 TextTable::percent(rto::speedupPercent(Orig, Lpd) / 100.0,
                                    2)});
      First = false;
    }
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\npaper reference: mcf 23.84%% @1.5M (rising with period); "
              "gap 9.5%% @100K falling to 4.9%% @1.5M; mgrid ~0%%\n");
  return 0;
}
