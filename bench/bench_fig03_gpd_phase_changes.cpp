//===- bench_fig03_gpd_phase_changes.cpp - Paper Fig. 3 -------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 3: "Number of phase changes for different sampling periods" --
// global (centroid) phase changes for 21 benchmarks at 45K / 450K / 900K
// cycles/interrupt. Expected shape: the oscillating benchmarks (wupwise,
// galgel, mcf, facerec, lucas, gap, bzip2...) fire heavily at 45K and
// collapse to near zero at larger periods; the steady numeric codes sit at
// ~0 everywhere.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 3] GPD phase changes vs sampling period\n\n");
  TextTable Table;
  Table.header({"benchmark", "45K", "450K", "900K"});
  for (const std::string &Name : workloads::fig3Names()) {
    std::vector<std::string> Row = {Name};
    for (Cycles Period : SweepPeriods) {
      const workloads::Workload W = workloads::make(Name);
      Row.push_back(TextTable::count(runGpd(W, Period).PhaseChanges));
    }
    Table.row(std::move(Row));
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
