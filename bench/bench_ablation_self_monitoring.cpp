//===- bench_ablation_self_monitoring.cpp - Deployed-trace feedback -------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation for the paper's section 5: "region monitoring allows us to
// implement a feedback mechanism ... to estimate performance impact of
// deployed optimizations" and "undo ineffective optimizations deployed to
// a region".
//
// The stress workload is synthetic.pollution: the hot loop's *cycle*
// histogram never changes, but its delinquent loads move halfway through
// the run. PC-histogram phase detection cannot see this, so a prefetch
// trace trained on the first phase stays deployed while silently polluting
// the cache. Four policies are compared:
//
//   off            -- trust every deployment (harm persists);
//   ground-truth   -- oracle: undo when the simulator says the trace turned
//                     harmful (ablation upper bound);
//   observational  -- honest feedback: undo when the region's observed
//                     D-cache-miss fraction stops beating its
//                     pre-deployment baseline;
//   miss-channel   -- detect the change instead: a second per-region
//                     detector over miss histograms turns the invisible
//                     shift into a local phase change that unpatches.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "rto/Harness.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[ablation] Self-monitoring of deployed optimizations "
              "(synthetic.pollution @ 45K)\n\n");
  const workloads::Workload W = workloads::make("synthetic.pollution");
  const rto::OptimizationModel Model = W.model();

  rto::RtoConfig Base;
  Base.Sampling.PeriodCycles = 45'000;
  const rto::RtoResult Unopt =
      rto::runUnoptimized(W.Prog, W.Script, BenchSeed, Base);

  TextTable Table;
  Table.header({"policy", "cycles", "vs unoptimized", "patches",
                "self-undos"});
  Table.row({"(no optimizer)", TextTable::count(Unopt.TotalCycles), "0.00%",
             "0", "0"});

  const auto Report = [&](const char *Name, const rto::RtoConfig &Config) {
    const rto::RtoResult R =
        rto::runLocal(W.Prog, W.Script, Model, BenchSeed, Config);
    const double Gain = (static_cast<double>(Unopt.TotalCycles) /
                             static_cast<double>(R.TotalCycles) -
                         1.0);
    Table.row({Name, TextTable::count(R.TotalCycles),
               TextTable::percent(Gain, 2), TextTable::count(R.Patches),
               TextTable::count(R.SelfUndos)});
  };

  {
    rto::RtoConfig Config = Base;
    Config.SelfMonitor = rto::SelfMonitorMode::Off;
    Report("off", Config);
  }
  {
    rto::RtoConfig Config = Base;
    Config.SelfMonitor = rto::SelfMonitorMode::GroundTruth;
    Report("ground-truth", Config);
  }
  {
    rto::RtoConfig Config = Base;
    Config.SelfMonitor = rto::SelfMonitorMode::Observational;
    Report("observational", Config);
  }
  {
    rto::RtoConfig Config = Base;
    Config.SelfMonitor = rto::SelfMonitorMode::Off;
    Config.Monitor.TrackMissPhases = true;
    Report("miss-channel", Config);
  }

  std::printf("%s", Table.render().c_str());
  std::printf("\nexpected shape: 'off' must lose to the unoptimized run "
              "(the trace turns harmful\nand stays); every feedback policy "
              "recovers most of the phase-1 gain.\n");
  return 0;
}
