//===- bench_ablation_pruning.cpp - Cold-region pruning -------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation for the paper's cost-reduction idea (section 3.2.3): "region
// pruning, where we can remove infrequently executing and relatively cold
// regions from the region monitor". Runs the many-region workloads with
// pruning on and off and reports monitoring cost and peak region count.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "sim/ProgramCodeMap.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[ablation] Cold-region pruning @ 45K\n\n");
  TextTable Table;
  Table.header({"benchmark", "pruning", "monitor ms", "active regions",
                "regions ever", "pruned", "triggers"});

  for (const char *Name : {"176.gcc", "186.crafty", "254.gap", "181.mcf"}) {
    for (const bool Prune : {false, true}) {
      const workloads::Workload W = workloads::make(Name);
      const SampleStream Stream = recordStream(W, 45'000);

      sim::ProgramCodeMap Map(W.Prog);
      core::RegionMonitorConfig Config;
      Config.PruneColdRegions = Prune;
      Config.PruneAfterIdleIntervals = 32;
      core::RegionMonitor Monitor(Map, Config);
      std::uint64_t Pruned = 0;
      Monitor.setEventHandler([&](const core::RegionEvent &E) {
        if (E.K == core::RegionEvent::Kind::Pruned)
          ++Pruned;
      });
      const double Sec = timeSeconds([&] {
        for (const auto &Interval : Stream.Intervals)
          Monitor.observeInterval(Interval);
      });
      Table.row({Name, Prune ? "on" : "off", TextTable::num(Sec * 1e3, 2),
                 TextTable::count(Monitor.activeRegionIds().size()),
                 TextTable::count(Monitor.regions().size()),
                 TextTable::count(Pruned),
                 TextTable::count(Monitor.formationTriggers())});
    }
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
