//===- bench_fig04_gpd_stable_time.cpp - Paper Fig. 4 ---------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 4: "Percentage of time spent in stable phase for different sampling
// periods" (global detection). Expected shape: stable time does NOT
// correlate with phase-change counts -- mcf is *more* stable at 45K (fast
// response restabilizes between toggles) while facerec stays largely
// unstable at every period.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 4] GPD %% of time in stable phase vs sampling period\n\n");
  TextTable Table;
  Table.header({"benchmark", "45K", "450K", "900K"});
  for (const std::string &Name : workloads::fig3Names()) {
    std::vector<std::string> Row = {Name};
    for (Cycles Period : SweepPeriods) {
      const workloads::Workload W = workloads::make(Name);
      Row.push_back(TextTable::percent(runGpd(W, Period).StableFraction));
    }
    Table.row(std::move(Row));
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
