//===- bench_ablation_adaptive_rt.cpp - Size-adaptive threshold -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation for the paper's section 3.2.2 observation on 188.ammp: "the r
// value lies just below the threshold. Since the region is very large, the
// granularity limitation breaks down... We are investigating the use of a
// threshold based on the size of region." Runs the 188.ammp model with and
// without our size-adaptive rt and shows the aberrant phase-change counts
// collapsing while the small-region benchmarks are untouched.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[ablation] Size-adaptive similarity threshold (fixes the "
              "188.ammp aberration)\n\n");
  TextTable Table;
  Table.header({"benchmark", "period", "region", "instrs",
                "changes (fixed rt)", "changes (adaptive rt)",
                "stable% fixed", "stable% adaptive"});

  for (const char *Name : {"188.ammp", "181.mcf"}) {
    bool FirstBench = true;
    for (Cycles Period : SweepPeriods) {
      core::RegionMonitorConfig Fixed;
      MonitorRun FixedRun(workloads::make(Name), Period, Fixed);

      core::RegionMonitorConfig Adaptive;
      Adaptive.Lpd.AdaptiveThreshold = true;
      MonitorRun AdaptiveRun(workloads::make(Name), Period, Adaptive);

      // Regions form identically (formation does not depend on rt), so the
      // id spaces line up.
      bool FirstRow = true;
      for (core::RegionId Id : FixedRun.regionsBySamples()) {
        const core::Region &R = FixedRun.monitor().regions()[Id];
        const core::RegionStats &F = FixedRun.monitor().stats(Id);
        const core::RegionStats &A = AdaptiveRun.monitor().stats(Id);
        Table.row({FirstBench && FirstRow ? Name : "",
                   FirstRow ? TextTable::count(Period) : "", R.Name,
                   TextTable::count(R.instrCount()),
                   TextTable::count(F.PhaseChanges),
                   TextTable::count(A.PhaseChanges),
                   TextTable::percent(F.stableFraction()),
                   TextTable::percent(A.stableFraction())});
        FirstRow = false;
      }
      FirstBench = false;
    }
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
