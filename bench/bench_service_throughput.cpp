//===- bench/bench_service_throughput.cpp - Service scaling ---------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures MonitorService ingestion throughput (batches/sec) as the worker
// pool grows from 1 to 8 threads over a fixed 8-stream workload. Every
// configuration processes the identical pre-recorded batch set, so the
// ratio between rows is pure parallel-scaling behaviour: per-stream
// monitors are independent and shard-pinned, so aggregate throughput
// should scale with workers until it saturates the hardware threads (on a
// single-core host every row necessarily lands near 1x).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "sampling/Sampler.h"
#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/TextTable.h"

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

namespace {

constexpr std::size_t StreamCount = 8;
constexpr std::size_t Repetitions = 4;
constexpr Cycles Period = 45'000;

struct RecordedStream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

std::vector<RecordedStream> recordStreams() {
  std::vector<RecordedStream> Streams;
  Streams.reserve(StreamCount);
  for (std::size_t I = 0; I < StreamCount; ++I) {
    RecordedStream S;
    S.W = std::make_unique<workloads::Workload>(
        workloads::make("synthetic.periodic"));
    S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
    sim::Engine Engine(S.W->Prog, S.W->Script, BenchSeed + I);
    sampling::Sampler Sampler(Engine, {Period, 2032});
    S.Intervals = Sampler.collectIntervals();
    Streams.push_back(std::move(S));
  }
  return Streams;
}

/// Runs the full batch set through a fresh service with \p Workers worker
/// threads and returns the wall-clock seconds of the ingest+drain span.
double runConfig(const std::vector<RecordedStream> &Streams,
                 std::size_t Workers, std::uint64_t &BatchesOut) {
  service::MonitorService Service(
      {Workers, /*QueueCapacity=*/64, service::OverflowPolicy::Block,
       /*ValidateBatches=*/true, {}});
  for (const RecordedStream &S : Streams)
    Service.addStream(*S.Map);
  Service.start();

  const double Seconds = timeSeconds([&] {
    std::vector<std::thread> Producers;
    Producers.reserve(Streams.size());
    for (service::StreamId Id = 0; Id < Streams.size(); ++Id)
      Producers.emplace_back([&, Id] {
        for (std::size_t Rep = 0; Rep < Repetitions; ++Rep)
          for (const std::vector<Sample> &Interval : Streams[Id].Intervals)
            Service.submit({Id, Interval});
      });
    for (std::thread &T : Producers)
      T.join();
    Service.stop();
  });

  BatchesOut = Service.snapshot().BatchesProcessed;
  return Seconds;
}

} // namespace

int main() {
  const std::vector<RecordedStream> Streams = recordStreams();
  std::uint64_t TotalBatches = 0;
  for (const RecordedStream &S : Streams)
    TotalBatches += S.Intervals.size() * Repetitions;

  std::printf("MonitorService throughput: %zu streams, %llu batches of "
              "2032 samples, lossless backpressure\n"
              "(host reports %u hardware threads; scaling saturates "
              "there)\n\n",
              StreamCount, static_cast<unsigned long long>(TotalBatches),
              std::thread::hardware_concurrency());

  TextTable Table;
  Table.header(
      {"workers", "batches", "seconds", "batches/sec", "vs 1 worker"});
  double BaselineRate = 0;
  for (const std::size_t Workers : {1u, 2u, 4u, 8u}) {
    std::uint64_t Batches = 0;
    const double Seconds = runConfig(Streams, Workers, Batches);
    const double Rate = static_cast<double>(Batches) / Seconds;
    if (Workers == 1)
      BaselineRate = Rate;
    Table.row({TextTable::count(Workers), TextTable::count(Batches),
               TextTable::num(Seconds, 3), TextTable::num(Rate, 0),
               TextTable::num(Rate / BaselineRate, 2) + "x"});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
