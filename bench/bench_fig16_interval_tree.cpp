//===- bench_fig16_interval_tree.cpp - Paper Fig. 16 ----------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 16: "Improvement from using interval trees instead of simple
// lists" for sample attribution. Each benchmark's final region set is
// loaded into both attribution structures and the identical recorded
// sample stream is looked up through each; we report the interval-tree
// cost normalized to the list cost.
//
// Expected shape: ~1 (or slightly above, from tree maintenance) for
// programs with a handful of regions; well below 1 for the many-region
// programs (gcc, crafty, parser, bzip2, fma3d in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "core/Attribution.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 16] Attribution cost: interval tree normalized to "
              "list @ 45K\n\n");
  TextTable Table;
  Table.header({"benchmark", "regions", "list ms", "tree ms",
                "tree/list factor"});

  std::vector<std::string> Names = workloads::fig6Names();
  Names.push_back("179.art"); // the paper's Fig. 16 adds 179.art

  for (const std::string &Name : Names) {
    const workloads::Workload W = workloads::make(Name);
    const SampleStream Stream = recordStream(W, 45'000);

    // Discover the region set by running the monitor once.
    MonitorRun Run(workloads::make(Name), 45'000);
    const std::vector<core::RegionId> Ids = Run.monitor().activeRegionIds();

    core::ListAttributor List;
    core::IntervalTreeAttributor Tree;
    for (core::RegionId Id : Ids) {
      const core::Region &R = Run.monitor().regions()[Id];
      List.insert(Id, R.Start, R.End);
      Tree.insert(Id, R.Start, R.End);
    }

    std::vector<core::RegionId> Scratch;
    Scratch.reserve(8);
    std::uint64_t HitsList = 0, HitsTree = 0;
    const double ListSec = timeSeconds([&] {
      for (const auto &Interval : Stream.Intervals)
        for (const Sample &S : Interval) {
          Scratch.clear();
          List.lookup(S.Pc, Scratch);
          HitsList += Scratch.size();
        }
    });
    const double TreeSec = timeSeconds([&] {
      for (const auto &Interval : Stream.Intervals)
        for (const Sample &S : Interval) {
          Scratch.clear();
          Tree.lookup(S.Pc, Scratch);
          HitsTree += Scratch.size();
        }
    });
    if (HitsList != HitsTree) {
      std::fprintf(stderr, "attribution mismatch on %s\n", Name.c_str());
      return 1;
    }

    Table.row({Name, TextTable::count(Ids.size()),
               TextTable::num(ListSec * 1e3, 2),
               TextTable::num(TreeSec * 1e3, 2),
               TextTable::num(ListSec > 0 ? TreeSec / ListSec : 0, 3)});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
