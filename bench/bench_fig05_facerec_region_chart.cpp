//===- bench_fig05_facerec_region_chart.cpp - Paper Fig. 5 ----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 5: "Region chart for 187.facerec" -- execution periodically
// switches between two sets of regions; each switch trips the global
// detector, so the phase line fires constantly despite there being "few
// actual phase changes".
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "RegionChart.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf(
      "[Fig. 5] Region chart for 187.facerec @ 45K cycles/interrupt\n\n");
  core::RegionMonitorConfig Config;
  Config.RecordTimelines = true;
  MonitorRun Run(workloads::make("187.facerec"), 45'000, Config);

  std::printf("%s\n", renderRegionChart(Run).c_str());
  std::printf("GPD: %llu phase changes, %.1f%% stable -- yet every region "
              "below is locally steady:\n",
              static_cast<unsigned long long>(
                  Run.gpdDetector().phaseChanges()),
              Run.gpdDetector().stableFraction() * 100.0);
  for (core::RegionId Id : Run.regionsBySamples()) {
    const core::RegionStats &S = Run.monitor().stats(Id);
    std::printf("  region %-14s local changes %llu, %.1f%% locally stable\n",
                Run.monitor().regions()[Id].Name.c_str(),
                static_cast<unsigned long long>(S.PhaseChanges),
                S.stableFraction() * 100.0);
  }
  return 0;
}
