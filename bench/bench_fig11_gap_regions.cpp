//===- bench_fig11_gap_regions.cpp - Paper Fig. 11 ------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 11: "Regions in 254.gap and stability of regions using Pearson's
// co-efficient". Expected shape: r is 0 for both regions until they first
// execute; 7ba2c-7ba78 then holds r near 1 (stable), while 8d25c-8d314
// keeps collapsing (its internal bottleneck moves with the mix) -- local
// phase detection isolates the unstable region without penalizing the
// stable one.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/AsciiChart.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 11] Region stability in 254.gap @ 45K\n\n");
  core::RegionMonitorConfig Config;
  Config.RecordTimelines = true;
  MonitorRun Run(workloads::make("254.gap"), 45'000, Config);
  const core::RegionMonitor &M = Run.monitor();

  TextTable Table;
  Table.header({"region", "formed@", "local phase changes",
                "% locally stable", "verdict"});
  for (core::RegionId Id : Run.regionsBySamples()) {
    const core::Region &R = M.regions()[Id];
    const core::RegionStats &S = M.stats(Id);
    Table.row({R.Name, TextTable::count(R.FormedAtInterval),
               TextTable::count(S.PhaseChanges),
               TextTable::percent(S.stableFraction()),
               S.PhaseChanges > 10 ? "unstable" : "stable"});

    std::span<const double> Line = M.rTimeline(Id);
    const std::size_t Cols = std::min<std::size_t>(96, Line.size());
    std::vector<double> Cells;
    for (std::size_t Col = 0; Col < Cols; ++Col)
      Cells.push_back(Line[Col * Line.size() / Cols]);
    std::printf("  %-14s r: |%s| (scale -0.2..1)\n", R.Name.c_str(),
                sparkline(Cells, -0.2, 1.0).c_str());
  }
  std::printf("\n%s", Table.render().c_str());
  return 0;
}
