//===- bench_fig10_mcf_pearson.cpp - Paper Fig. 10 ------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 10: "Pearson's co-efficient of correlation for three regions in
// mcf". Expected shape: r stays near 1 for every region across the whole
// run -- despite the global churn of Figs. 2/9, local analysis finds NO
// phase changes in mcf, so a longer stable phase (and more optimization
// opportunity) is available.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/AsciiChart.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 10] Pearson r over time for 181.mcf regions @ 45K\n\n");
  core::RegionMonitorConfig Config;
  Config.RecordTimelines = true;
  MonitorRun Run(workloads::make("181.mcf"), 45'000, Config);
  const core::RegionMonitor &M = Run.monitor();

  TextTable Table;
  Table.header({"region", "min r (after warmup)", "mean r",
                "local phase changes", "% locally stable"});
  for (core::RegionId Id : Run.regionsBySamples()) {
    const core::Region &R = M.regions()[Id];
    std::span<const double> Line = M.rTimeline(Id);
    double MinR = 1, Acc = 0;
    std::size_t N = 0;
    // Skip the first two intervals: r is 0 until two non-empty intervals
    // have been seen.
    for (std::size_t I = 2; I < Line.size(); ++I) {
      MinR = std::min(MinR, Line[I]);
      Acc += Line[I];
      ++N;
    }
    Table.row({R.Name, TextTable::num(MinR, 3),
               TextTable::num(N ? Acc / static_cast<double>(N) : 0, 3),
               TextTable::count(M.stats(Id).PhaseChanges),
               TextTable::percent(M.stats(Id).stableFraction())});

    const std::size_t Cols = std::min<std::size_t>(96, Line.size());
    std::vector<double> Cells;
    for (std::size_t Col = 0; Col < Cols; ++Col)
      Cells.push_back(Line[Col * Line.size() / Cols]);
    std::printf("  %-14s r: |%s| (scale -0.2..1)\n", R.Name.c_str(),
                sparkline(Cells, -0.2, 1.0).c_str());
  }
  std::printf("\n%s", Table.render().c_str());
  return 0;
}
