//===- bench_fig02_mcf_region_chart.cpp - Paper Fig. 2 --------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 2: "Relation between regions and phase changes for 181.mcf" --
// per-region cycle samples per interval (stacked) with the global phase
// line. Expected shape: one region dominates early and fades as another
// grows; the periodic tail keeps the global detector unstable for long
// stretches even though the region mix is merely toggling.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "RegionChart.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 2] Region chart for 181.mcf @ 45K cycles/interrupt\n\n");
  core::RegionMonitorConfig Config;
  Config.RecordTimelines = true;
  MonitorRun Run(workloads::make("181.mcf"), 45'000, Config);

  std::printf("%s\n", renderRegionChart(Run).c_str());
  std::printf("%s\n", renderRegionSeries(Run).c_str());
  std::printf("GPD: %llu phase changes, %.1f%% of %llu intervals stable\n",
              static_cast<unsigned long long>(
                  Run.gpdDetector().phaseChanges()),
              Run.gpdDetector().stableFraction() * 100.0,
              static_cast<unsigned long long>(
                  Run.gpdDetector().intervals()));
  return 0;
}
