//===- bench_fig06_ucr_median.cpp - Paper Fig. 6 --------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 6: "Median of percentage of samples not monitored by the region
// monitor" across 23 benchmarks, against the 30% formation-trigger
// threshold. Expected shape: most programs sit well below 30%; 254.gap and
// 186.crafty sit above it because their hot cycles span procedure
// boundaries and the region builder can never claim them.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/Statistics.h"
#include "support/TextTable.h"

#include <cstdio>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 6] Median %%UCR per benchmark @ 45K cycles/interrupt "
              "(threshold 30%%)\n\n");
  TextTable Table;
  Table.header({"benchmark", "median %UCR", "> threshold",
                "formation triggers"});
  for (const std::string &Name : workloads::fig6Names()) {
    MonitorRun Run(workloads::make(Name), 45'000);
    std::span<const double> History = Run.monitor().ucrHistory();
    const std::vector<double> Ucr(History.begin(), History.end());
    const double Median = median(Ucr);
    Table.row({Name, TextTable::percent(Median), Median > 0.30 ? "YES" : "",
               TextTable::count(Run.monitor().formationTriggers())});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
