//===- bench_fig07_ucr_timeline.cpp - Paper Fig. 7 ------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 7: "Percentage of samples in UCR over time" for 254.gap and
// 186.crafty. Expected shape: despite region formation triggering on
// essentially every buffer overflow, the UCR percentage never drops --
// the unclaimed samples live in code the region builder cannot handle.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/AsciiChart.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 7] %%UCR over time (45K cycles/interrupt)\n\n");
  for (const char *Name : {"254.gap", "186.crafty"}) {
    MonitorRun Run(workloads::make(Name), 45'000);
    std::span<const double> History = Run.monitor().ucrHistory();

    const std::size_t Cols = std::min<std::size_t>(96, History.size());
    std::vector<double> Cells;
    for (std::size_t Col = 0; Col < Cols; ++Col)
      Cells.push_back(History[Col * History.size() / Cols]);

    std::printf("%s (%llu formation triggers over %llu intervals):\n",
                Name,
                static_cast<unsigned long long>(
                    Run.monitor().formationTriggers()),
                static_cast<unsigned long long>(Run.monitor().intervals()));
    std::printf("  %%UCR 0..60%%: |%s|\n", sparkline(Cells, 0, 0.6).c_str());
    TextTable Table;
    Table.header({"quarter", "mean %UCR"});
    for (int Q = 0; Q < 4; ++Q) {
      const std::size_t Lo = History.size() * static_cast<std::size_t>(Q) / 4;
      const std::size_t Hi =
          History.size() * static_cast<std::size_t>(Q + 1) / 4;
      double Acc = 0;
      for (std::size_t I = Lo; I < Hi; ++I)
        Acc += History[I];
      std::string Label = "Q";
      Label += std::to_string(Q + 1);
      Table.row({Label, TextTable::percent(Hi > Lo ? Acc / (Hi - Lo) : 0)});
    }
    std::printf("%s\n", Table.render().c_str());
  }
  return 0;
}
