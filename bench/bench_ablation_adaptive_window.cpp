//===- bench_ablation_adaptive_window.cpp - GPD window resizing -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation grounded in the paper's related work ([17], Nagpurkar et al.,
// "Online Phase Detection Algorithms", CGO 2006): adaptive profile-window
// resizing "is more accurate than constant windows". Reruns the Fig. 3/4
// sweep for the centroid detector with a constant history window vs the
// adaptive one (shrink on phase change, grow while calm) on the
// period-sensitive benchmarks.
//
// Expected shape: the adaptive window restabilizes faster after real
// transitions (higher stable time on the oscillators at 45K) without
// inflating the change counts of the steady codes.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

namespace {

GpdRun runWith(const workloads::Workload &W, Cycles Period, bool Adaptive) {
  sim::Engine Engine(W.Prog, W.Script, BenchSeed);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  gpd::CentroidConfig Config;
  Config.AdaptiveWindow = Adaptive;
  gpd::CentroidPhaseDetector Detector(Config);
  Sampler.run([&](std::span<const Sample> Buffer) {
    Detector.observeInterval(Buffer);
  });
  return GpdRun{Detector.phaseChanges(), Detector.stableFraction(),
                Detector.intervals()};
}

} // namespace

int main() {
  std::printf("[ablation] Constant vs adaptive GPD history window "
              "(related work [17])\n\n");
  TextTable Table;
  Table.header({"benchmark", "period", "changes const", "changes adaptive",
                "stable% const", "stable% adaptive"});
  const char *Names[] = {"181.mcf",  "187.facerec", "254.gap",
                         "168.wupwise", "171.swim", "172.mgrid"};
  for (const char *Name : Names) {
    bool First = true;
    for (Cycles Period : SweepPeriods) {
      const workloads::Workload W = workloads::make(Name);
      const GpdRun Const = runWith(W, Period, false);
      const GpdRun Adaptive = runWith(W, Period, true);
      Table.row({First ? Name : "", TextTable::count(Period),
                 TextTable::count(Const.PhaseChanges),
                 TextTable::count(Adaptive.PhaseChanges),
                 TextTable::percent(Const.StableFraction),
                 TextTable::percent(Adaptive.StableFraction)});
      First = false;
    }
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
