//===- bench/BenchSupport.cpp - Shared experiment runners -----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "sampling/Sampler.h"
#include "sim/Engine.h"

#include <algorithm>
#include <chrono>

using namespace regmon;
using namespace regmon::bench;

GpdRun regmon::bench::runGpd(const workloads::Workload &W, Cycles Period,
                             std::uint64_t Seed) {
  sim::Engine Engine(W.Prog, W.Script, Seed);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  gpd::CentroidPhaseDetector Detector;
  Sampler.run([&](std::span<const Sample> Buffer) {
    Detector.observeInterval(Buffer);
  });
  return GpdRun{Detector.phaseChanges(), Detector.stableFraction(),
                Detector.intervals()};
}

MonitorRun::MonitorRun(workloads::Workload Workload, Cycles Period,
                       core::RegionMonitorConfig Config, std::uint64_t Seed)
    : W(std::make_unique<workloads::Workload>(std::move(Workload))),
      Map(std::make_unique<sim::ProgramCodeMap>(W->Prog)),
      Monitor(std::make_unique<core::RegionMonitor>(*Map, Config)),
      Gpd(std::make_unique<gpd::CentroidPhaseDetector>()) {
  sim::Engine Engine(W->Prog, W->Script, Seed);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  Sampler.run([&](std::span<const Sample> Buffer) {
    Monitor->observeInterval(Buffer);
    Gpd->observeInterval(Buffer);
  });
}

std::vector<core::RegionId> MonitorRun::regionsBySamples() const {
  std::vector<core::RegionId> Ids = Monitor->activeRegionIds();
  std::stable_sort(Ids.begin(), Ids.end(),
                   [&](core::RegionId A, core::RegionId B) {
                     return Monitor->stats(A).TotalSamples >
                            Monitor->stats(B).TotalSamples;
                   });
  return Ids;
}

SampleStream regmon::bench::recordStream(const workloads::Workload &W,
                                         Cycles Period, std::uint64_t Seed) {
  sim::Engine Engine(W.Prog, W.Script, Seed);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  SampleStream Stream;
  Sampler.run([&](std::span<const Sample> Buffer) {
    Stream.Intervals.emplace_back(Buffer.begin(), Buffer.end());
  });
  Stream.ProgramCycles = Engine.cycles();
  return Stream;
}

double regmon::bench::timeSeconds(const std::function<void()> &Fn) {
  const auto Start = std::chrono::steady_clock::now();
  Fn();
  const auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}
