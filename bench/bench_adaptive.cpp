//===- bench/bench_adaptive.cpp - Adaptive sampling payoff gates ----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the adaptive period controller (DESIGN.md §16) buys and
// what it costs, per workload, with three arms over the same simulated
// execution: a fixed-period run at the paper's dense 45K-cycle rate (the
// baseline every drift is measured against), a fixed-period run at the
// controller's ceiling (45K << MaxScaleLog2 -- what you'd deploy if you
// coarsened naively for the same savings), and an adaptive run whose
// sampler follows the controller's recommendation. The paper's §2.3
// differential is the claim under test -- LPD phase-change counts are
// robust to the sampling period while centroid GPD's are not -- but our
// own Fig. 13 sweep shows the robustness is a property of *stable*
// regions: churn-heavy regions (254.gap's r2, 188.ammp) lose most of
// their phase-change count under ANY fixed coarsening. The controller's
// job is exactly to re-densify through churn, so the honest gate is
// relative: adaptive coarsening must preserve the dense LPD counts far
// better than naive fixed coarsening does at comparable savings, while
// the GPD baseline visibly distorts either way.
//
// Emits one JSON document on stdout (CI tees it into BENCH_adaptive.json);
// the human-readable table goes to stderr. Drifts aggregate as the mean
// of per-workload drifts (macro-average, each benchmark weighted equally
// as in the paper's tables; the per-workload counts are all in the JSON).
// Exits nonzero when a gate fails: sample volume must shrink >= 5x in
// aggregate, mean adaptive LPD drift must stay within 25%, the adaptive
// arm must be at least as faithful to the dense LPD counts as the
// fixed-coarse arm on EVERY workload, and the mean GPD drift must exceed
// the mean LPD drift -- the asymmetry that licenses the controller at
// all. `--smoke` runs the synthetic corpus instead of the Fig. 13 sweep;
// the gates are deterministic counters, so they hold in both modes.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "sampling/AdaptiveController.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "support/TextTable.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

namespace {

constexpr Cycles BasePeriod = 45'000;

sampling::AdaptiveConfig benchConfig(bool Enabled) {
  sampling::AdaptiveConfig Cfg;
  Cfg.Enabled = Enabled;
  Cfg.BasePeriodCycles = BasePeriod;
  Cfg.MaxScaleLog2 = 4; // up to 16x the base period
  // Step after every stable interval: the synthetic corpus runs are only
  // tens of base intervals long, so a slower ramp never amortizes.
  Cfg.StableIntervalsPerStep = 1;
  return Cfg;
}

/// The three arms of the differential, all over the same execution.
enum class Arm {
  Dense,    ///< fixed 45K period; the baseline drifts are measured against
  Coarse,   ///< fixed at the controller's ceiling (45K << MaxScaleLog2)
  Adaptive, ///< controller-steered: dense through churn, coarse when stable
};

struct ArmResult {
  std::uint64_t Samples = 0;
  std::uint64_t Intervals = 0;
  std::uint64_t LpdPhaseChanges = 0;
  std::uint64_t GpdPhaseChanges = 0;
  std::uint64_t Lengthens = 0;
  std::uint64_t Tightens = 0;
  std::uint64_t SamplesSaved = 0;
};

ArmResult runArm(const workloads::Workload &W, Arm Which) {
  sim::ProgramCodeMap Map(W.Prog);
  sim::Engine Engine(W.Prog, W.Script, BenchSeed);
  sampling::Sampler Sampler(Engine, {BasePeriod, 2032});
  core::RegionMonitor Monitor(Map);
  gpd::CentroidPhaseDetector Gpd;
  sampling::AdaptiveController Ctl(benchConfig(Which == Arm::Adaptive));
  if (Which == Arm::Coarse)
    Sampler.setPeriodScaleLog2(benchConfig(true).MaxScaleLog2);

  ArmResult R;
  std::vector<Sample> Buffer;
  while (Sampler.fillBuffer(Buffer)) {
    const std::uint64_t Before = Monitor.totalPhaseChanges();
    Monitor.observeInterval(Buffer);
    Gpd.observeInterval(Buffer);
    R.Samples += Buffer.size();
    ++R.Intervals;
    // The service's per-interval recipe (MonitorService::process): credit
    // the interval's samples at the scale they were collected, then feed
    // the monitor's post-interval view to the controller and follow its
    // recommendation from the next interrupt on.
    Ctl.noteSamples(Buffer.size());
    sampling::StreamFeedback F;
    F.PhaseChanged = Monitor.totalPhaseChanges() != Before;
    const std::size_t Active = Monitor.activeRegionCount();
    F.AllRegionsStable = Active > 0 && Monitor.stableRegionCount() == Active;
    F.UcrFraction = Monitor.lastUcrFraction();
    (void)Ctl.observe(F);
    if (Which == Arm::Adaptive)
      Sampler.setPeriodScaleLog2(Ctl.scaleLog2());
  }
  R.LpdPhaseChanges = Monitor.totalPhaseChanges();
  R.GpdPhaseChanges = Gpd.phaseChanges();
  R.Lengthens = Ctl.lengthens();
  R.Tightens = Ctl.tightens();
  R.SamplesSaved = Ctl.samplesSaved();
  return R;
}

struct WorkloadResult {
  std::string Name;
  ArmResult Dense;
  ArmResult Coarse;
  ArmResult Adaptive;
};

double ratio(std::uint64_t Num, std::uint64_t Den) {
  return Den == 0 ? 0.0 : static_cast<double>(Num) / static_cast<double>(Den);
}

/// |A - B| / max(1, B): relative drift of a count against its baseline.
double drift(std::uint64_t A, std::uint64_t B) {
  const std::uint64_t D = A > B ? A - B : B - A;
  return static_cast<double>(D) / static_cast<double>(B > 0 ? B : 1);
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  std::vector<std::string> Names;
  if (Smoke)
    Names = {"synthetic.steady", "synthetic.periodic",
             "synthetic.bottleneck", "synthetic.pollution"};
  else
    Names = workloads::fig13Names();

  std::vector<WorkloadResult> Results;
  for (const std::string &Name : Names) {
    WorkloadResult R;
    R.Name = Name;
    const workloads::Workload W = workloads::make(Name);
    R.Dense = runArm(W, Arm::Dense);
    R.Coarse = runArm(W, Arm::Coarse);
    R.Adaptive = runArm(W, Arm::Adaptive);
    Results.push_back(std::move(R));
  }

  std::uint64_t DenseSamples = 0, AdaptiveSamples = 0;
  double LpdDriftSum = 0.0, CoarseLpdDriftSum = 0.0, GpdDriftSum = 0.0;
  std::vector<std::string> DominanceFailures;
  TextTable Table;
  Table.header({"workload", "dense samples", "adaptive samples", "reduction",
                "lpd dense", "lpd coarse", "lpd adaptive", "gpd dense",
                "gpd adaptive", "lengthens", "tightens"});
  for (const WorkloadResult &R : Results) {
    DenseSamples += R.Dense.Samples;
    AdaptiveSamples += R.Adaptive.Samples;
    LpdDriftSum += drift(R.Adaptive.LpdPhaseChanges, R.Dense.LpdPhaseChanges);
    CoarseLpdDriftSum +=
        drift(R.Coarse.LpdPhaseChanges, R.Dense.LpdPhaseChanges);
    GpdDriftSum += drift(R.Adaptive.GpdPhaseChanges, R.Dense.GpdPhaseChanges);
    if (drift(R.Adaptive.LpdPhaseChanges, R.Dense.LpdPhaseChanges) >
        drift(R.Coarse.LpdPhaseChanges, R.Dense.LpdPhaseChanges))
      DominanceFailures.push_back(R.Name);
    Table.row({R.Name, TextTable::count(R.Dense.Samples),
               TextTable::count(R.Adaptive.Samples),
               TextTable::num(ratio(R.Dense.Samples, R.Adaptive.Samples), 2),
               TextTable::count(R.Dense.LpdPhaseChanges),
               TextTable::count(R.Coarse.LpdPhaseChanges),
               TextTable::count(R.Adaptive.LpdPhaseChanges),
               TextTable::count(R.Dense.GpdPhaseChanges),
               TextTable::count(R.Adaptive.GpdPhaseChanges),
               TextTable::count(R.Adaptive.Lengthens),
               TextTable::count(R.Adaptive.Tightens)});
  }
  const double N = static_cast<double>(Results.size());
  const double Reduction = ratio(DenseSamples, AdaptiveSamples);
  const double LpdDrift = LpdDriftSum / N;
  const double CoarseLpdDrift = CoarseLpdDriftSum / N;
  const double GpdDrift = GpdDriftSum / N;
  std::fprintf(stderr,
               "adaptive vs fixed-period sampling, %s corpus\n%s"
               "aggregate: %.2fx fewer samples, mean LPD drift %.1f%% "
               "adaptive vs %.1f%% fixed-coarse, mean GPD drift %.1f%%\n",
               Smoke ? "smoke" : "fig13", Table.render().c_str(), Reduction,
               LpdDrift * 100.0, CoarseLpdDrift * 100.0, GpdDrift * 100.0);

  // The gates: the payoff must be real and the §2.3 asymmetry visible.
  bool Ok = true;
  const auto gate = [&Ok](bool Pass, const char *What) {
    if (!Pass) {
      std::fprintf(stderr, "GATE FAILED: %s\n", What);
      Ok = false;
    }
  };
  gate(Reduction >= 5.0, "sample volume must shrink >= 5x in aggregate");
  gate(LpdDrift <= 0.25,
       "mean adaptive LPD phase-change drift must stay within 25%");
  for (const std::string &Name : DominanceFailures)
    gate(false, ("adaptive must track the dense LPD counts at least as "
                 "closely as the fixed-coarse arm on every workload "
                 "(violated by " +
                 Name + ")")
                    .c_str());
  gate(GpdDrift > LpdDrift,
       "GPD must degrade more than LPD (the differential that licenses "
       "adaptive coarsening)");

  std::printf("{\n  \"bench\": \"adaptive\",\n  \"mode\": \"%s\",\n"
              "  \"base_period\": %llu,\n  \"max_scale_log2\": %u,\n"
              "  \"aggregate\": {\"sample_reduction\": %.3f, "
              "\"lpd_drift\": %.4f, \"coarse_lpd_drift\": %.4f, "
              "\"gpd_drift\": %.4f, \"gates_passed\": %s},\n"
              "  \"workloads\": [\n",
              Smoke ? "smoke" : "full",
              static_cast<unsigned long long>(BasePeriod),
              benchConfig(true).MaxScaleLog2, Reduction, LpdDrift,
              CoarseLpdDrift, GpdDrift, Ok ? "true" : "false");
  for (std::size_t I = 0; I < Results.size(); ++I) {
    const WorkloadResult &R = Results[I];
    std::printf(
        "    {\"name\": \"%s\", \"dense_samples\": %llu, "
        "\"adaptive_samples\": %llu, \"dense_intervals\": %llu, "
        "\"adaptive_intervals\": %llu, \"lpd_dense\": %llu, "
        "\"lpd_coarse\": %llu, \"lpd_adaptive\": %llu, \"gpd_dense\": %llu, "
        "\"gpd_adaptive\": %llu, \"lengthens\": %llu, \"tightens\": %llu, "
        "\"samples_saved\": %llu}%s\n",
        R.Name.c_str(), static_cast<unsigned long long>(R.Dense.Samples),
        static_cast<unsigned long long>(R.Adaptive.Samples),
        static_cast<unsigned long long>(R.Dense.Intervals),
        static_cast<unsigned long long>(R.Adaptive.Intervals),
        static_cast<unsigned long long>(R.Dense.LpdPhaseChanges),
        static_cast<unsigned long long>(R.Coarse.LpdPhaseChanges),
        static_cast<unsigned long long>(R.Adaptive.LpdPhaseChanges),
        static_cast<unsigned long long>(R.Dense.GpdPhaseChanges),
        static_cast<unsigned long long>(R.Adaptive.GpdPhaseChanges),
        static_cast<unsigned long long>(R.Adaptive.Lengthens),
        static_cast<unsigned long long>(R.Adaptive.Tightens),
        static_cast<unsigned long long>(R.Adaptive.SamplesSaved),
        I + 1 < Results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return Ok ? 0 : 1;
}
