//===- bench/RegionChart.cpp - Shared region-chart rendering --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "RegionChart.h"

#include "support/AsciiChart.h"
#include "support/TextTable.h"

#include <algorithm>

using namespace regmon;
using namespace regmon::bench;

namespace {

/// Mean samples/interval of region \p Id within interval bucket
/// [\p Lo, \p Hi).
double bucketMean(const core::RegionMonitor &M, core::RegionId Id,
                  std::size_t Lo, std::size_t Hi) {
  const core::Region &R = M.regions()[Id];
  std::span<const std::uint32_t> Line = M.sampleTimeline(Id);
  double Acc = 0;
  std::size_t N = 0;
  for (std::size_t I = Lo; I < std::max(Hi, Lo + 1); ++I) {
    if (I < R.FormedAtInterval || I - R.FormedAtInterval >= Line.size())
      continue;
    Acc += Line[I - R.FormedAtInterval];
    ++N;
  }
  return N ? Acc / static_cast<double>(N) : 0.0;
}

} // namespace

std::string regmon::bench::renderRegionChart(const MonitorRun &Run,
                                             std::size_t Columns) {
  const core::RegionMonitor &M = Run.monitor();
  const std::size_t Intervals = M.intervals();
  const std::size_t Cols = std::min(Columns, Intervals);
  if (Cols == 0)
    return "(no intervals)\n";
  const auto Bucket = [&](std::size_t Col) {
    return Col * Intervals / Cols;
  };

  StackedChart Chart(14);
  for (core::RegionId Id : Run.regionsBySamples()) {
    std::vector<double> Cells(Cols, 0);
    for (std::size_t Col = 0; Col < Cols; ++Col)
      Cells[Col] = bucketMean(M, Id, Bucket(Col), Bucket(Col + 1));
    Chart.addSeries(M.regions()[Id].Name, std::move(Cells));
  }

  std::span<const gpd::GlobalPhaseState> Timeline =
      Run.gpdDetector().timeline();
  std::vector<bool> Unstable(Cols, false);
  for (std::size_t Col = 0; Col < Cols; ++Col)
    for (std::size_t I = Bucket(Col);
         I < std::max(Bucket(Col + 1), Bucket(Col) + 1) &&
         I < Timeline.size();
         ++I)
      if (Timeline[I] != gpd::GlobalPhaseState::Stable)
        Unstable[Col] = true;
  Chart.setOverlay("GPD phase unstable", std::move(Unstable));
  return Chart.render();
}

std::string regmon::bench::renderRegionSeries(const MonitorRun &Run,
                                              std::size_t Buckets) {
  const core::RegionMonitor &M = Run.monitor();
  const std::size_t Intervals = M.intervals();
  const std::size_t Rows = std::min(Buckets, Intervals);
  if (Rows == 0)
    return "(no intervals)\n";
  const auto Bucket = [&](std::size_t Row) {
    return Row * Intervals / Rows;
  };
  const std::vector<core::RegionId> Ids = Run.regionsBySamples();

  TextTable Table;
  std::vector<std::string> Header = {"intervals"};
  for (core::RegionId Id : Ids)
    Header.push_back(M.regions()[Id].Name);
  Header.push_back("GPD unstable%");
  Table.header(std::move(Header));

  std::span<const gpd::GlobalPhaseState> Timeline =
      Run.gpdDetector().timeline();
  for (std::size_t Row = 0; Row < Rows; ++Row) {
    const std::size_t Lo = Bucket(Row),
                      Hi = std::max(Bucket(Row + 1), Lo + 1);
    std::vector<std::string> Cells = {TextTable::count(Lo) + "-" +
                                      TextTable::count(Hi)};
    for (core::RegionId Id : Ids)
      Cells.push_back(TextTable::num(bucketMean(M, Id, Lo, Hi), 0));
    std::size_t UnstableCount = 0;
    for (std::size_t I = Lo; I < Hi && I < Timeline.size(); ++I)
      if (Timeline[I] != gpd::GlobalPhaseState::Stable)
        ++UnstableCount;
    Cells.push_back(TextTable::percent(
        static_cast<double>(UnstableCount) /
        static_cast<double>(Hi - Lo), 0));
    Table.row(std::move(Cells));
  }
  return Table.render();
}
