//===- bench_micro_primitives.cpp - Hot-path microbenchmarks --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings of the primitives on the monitoring hot path:
// the similarity kernels, the two attribution structures across region
// counts, one detector step of each detector, and the execution-engine
// sampling rate. These are the constants behind Figs. 15/16.
//
//===----------------------------------------------------------------------===//

#include "core/Attribution.h"
#include "core/LocalPhaseDetector.h"
#include "core/Similarity.h"
#include "gpd/CentroidPhaseDetector.h"
#include "sim/Engine.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

using namespace regmon;

namespace {

std::vector<std::uint32_t> randomHistogram(std::size_t Bins,
                                           std::uint64_t Seed) {
  Rng Random(Seed);
  std::vector<std::uint32_t> H(Bins);
  for (auto &V : H)
    V = static_cast<std::uint32_t>(Random.nextBelow(64));
  return H;
}

void BM_Similarity(benchmark::State &State, core::SimilarityKind Kind) {
  const auto Bins = static_cast<std::size_t>(State.range(0));
  const auto Metric = core::makeSimilarity(Kind);
  const auto A = randomHistogram(Bins, 1), B = randomHistogram(Bins, 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(Metric->compare(A, B));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(Bins));
}

void BM_Attribution(benchmark::State &State, core::AttributorKind Kind) {
  const auto Regions = static_cast<std::uint32_t>(State.range(0));
  const auto Attrib = core::makeAttributor(Kind);
  // Regions of 64 instructions spread over a 1 MiB text section, with
  // nesting every 8th region.
  Rng Random(3);
  for (std::uint32_t Id = 0; Id < Regions; ++Id) {
    const Addr Start = (Random.nextBelow(4096)) * 256;
    const Addr Len = Id % 8 == 0 ? 2048 : 256;
    Attrib->insert(Id, Start, Start + Len);
  }
  std::vector<Addr> Pcs(1024);
  for (auto &Pc : Pcs)
    Pc = Random.nextBelow(1u << 20) & ~Addr(3);
  std::vector<core::RegionId> Out;
  Out.reserve(16);
  std::size_t I = 0;
  for (auto _ : State) {
    Out.clear();
    Attrib->lookup(Pcs[I++ & 1023], Out);
    benchmark::DoNotOptimize(Out.data());
  }
}

void BM_LocalDetectorStep(benchmark::State &State) {
  const auto Bins = static_cast<std::size_t>(State.range(0));
  const core::PearsonSimilarity Metric;
  core::LocalPhaseDetector Detector(Bins, Metric);
  const auto A = randomHistogram(Bins, 1), B = randomHistogram(Bins, 2);
  bool Flip = false;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Detector.observe(Flip ? A : B));
    Flip = !Flip;
  }
}

void BM_GpdStep(benchmark::State &State) {
  gpd::CentroidPhaseDetector Detector;
  Rng Random(5);
  for (auto _ : State)
    benchmark::DoNotOptimize(Detector.observeCentroid(
        1.0e5 + static_cast<double>(Random.nextBelow(1000))));
}

void BM_EngineSampling(benchmark::State &State) {
  const workloads::Workload W = workloads::make("181.mcf");
  std::optional<sim::Engine> Engine(std::in_place, W.Prog, W.Script, 9);
  for (auto _ : State) {
    auto S = Engine->advanceAndSample(45'000);
    if (!S) {
      // Program finished mid-measurement: restart it (the reconstruction
      // cost is amortized over ~2M samples per run).
      Engine.emplace(W.Prog, W.Script, 9);
      S = Engine->advanceAndSample(45'000);
    }
    benchmark::DoNotOptimize(S);
  }
}

} // namespace

BENCHMARK_CAPTURE(BM_Similarity, pearson, core::SimilarityKind::Pearson)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_Similarity, cosine, core::SimilarityKind::Cosine)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_Similarity, overlap, core::SimilarityKind::Overlap)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_Attribution, list, core::AttributorKind::List)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_CAPTURE(BM_Attribution, tree, core::AttributorKind::IntervalTree)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK(BM_LocalDetectorStep)->Arg(64)->Arg(1024);
BENCHMARK(BM_GpdStep);
BENCHMARK(BM_EngineSampling);

BENCHMARK_MAIN();
