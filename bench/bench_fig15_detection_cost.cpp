//===- bench_fig15_detection_cost.cpp - Paper Fig. 15 ---------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 15: "Cost of region monitoring and a comparison to the centroid
// based global phase detector". Both detectors consume the identical
// pre-recorded sample stream; we report wall-clock cost of each, the
// factor by which region monitoring is slower, and each cost as a
// percentage of the simulated program's execution time (simulated cycles
// at an assumed 1.2 GHz UltraSPARC-class clock).
//
// Expected shape: region monitoring is tens to hundreds of times more
// expensive than the centroid, yet stays below ~1% of execution time for
// most programs; the many-region programs (gcc, crafty, parser, ...) pay
// the most. As in the paper, this cost can run on a separate core, off the
// program's critical path.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "sampling/Sampler.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

namespace {

/// Assumed clock of the simulated machine, used only to express detector
/// cost as a fraction of program execution time.
constexpr double ClockHz = 1.2e9;

} // namespace

int main() {
  std::printf("[Fig. 15] Detection cost: region monitoring (LPD) vs "
              "centroid (GPD) @ 45K\n\n");
  TextTable Table;
  Table.header({"benchmark", "regions", "GPD ms", "LPD ms", "x slower",
                "GPD %exec", "LPD %exec"});

  for (const std::string &Name : workloads::fig6Names()) {
    const workloads::Workload W = workloads::make(Name);
    const SampleStream Stream = recordStream(W, 45'000);

    gpd::CentroidPhaseDetector Gpd;
    const double GpdSec = timeSeconds([&] {
      for (const auto &Interval : Stream.Intervals)
        Gpd.observeInterval(Interval);
    });

    sim::ProgramCodeMap Map(W.Prog);
    core::RegionMonitor Monitor(Map, {});
    const double LpdSec = timeSeconds([&] {
      for (const auto &Interval : Stream.Intervals)
        Monitor.observeInterval(Interval);
    });

    const double ExecSec =
        static_cast<double>(Stream.ProgramCycles) / ClockHz;
    Table.row({Name, TextTable::count(Monitor.activeRegionIds().size()),
               TextTable::num(GpdSec * 1e3, 2),
               TextTable::num(LpdSec * 1e3, 2),
               TextTable::num(GpdSec > 0 ? LpdSec / GpdSec : 0, 0),
               TextTable::percent(GpdSec / ExecSec, 4),
               TextTable::percent(LpdSec / ExecSec, 4)});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
