//===- bench_ext_nextgen.cpp - Next-generation benchmark preview ----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's section 3.2.4 prediction: "we have observed much greater
// performance impact of our work on the candidate programs for the next
// generation of benchmarks" (the programs that became SPEC CPU2006, whose
// working sets overwhelm the caches). This bench reruns the Fig. 17
// experiment on three CPU2006-candidate models -- expect larger LPD-over-
// ORIG speedups than the CPU2000 numbers wherever global detection
// struggles, and a large *absolute* prefetching win even on the steady
// 470.lbm.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "rto/Harness.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[extension] Fig. 17 on next-generation (CPU2006-candidate) "
              "models\n\n");
  TextTable Table;
  Table.header({"benchmark", "period", "ORIG stable%", "LPD stable%",
                "LPD speedup", "LPD vs unoptimized"});

  for (const std::string &Name : workloads::nextGenNames()) {
    const workloads::Workload W = workloads::make(Name);
    const rto::OptimizationModel Model = W.model();
    bool First = true;
    for (Cycles Period : RtoPeriods) {
      rto::RtoConfig Config;
      Config.Sampling.PeriodCycles = Period;
      const rto::RtoResult Unopt =
          rto::runUnoptimized(W.Prog, W.Script, BenchSeed, Config);
      const rto::RtoResult Orig =
          rto::runOriginal(W.Prog, W.Script, Model, BenchSeed, Config);
      const rto::RtoResult Lpd =
          rto::runLocal(W.Prog, W.Script, Model, BenchSeed, Config);
      const double VsUnopt = (static_cast<double>(Unopt.TotalCycles) /
                                  static_cast<double>(Lpd.TotalCycles) -
                              1.0);
      Table.row({First ? Name : "", TextTable::count(Period),
                 TextTable::percent(Orig.StableFraction),
                 TextTable::percent(Lpd.StableFraction),
                 TextTable::percent(rto::speedupPercent(Orig, Lpd) / 100.0,
                                    2),
                 TextTable::percent(VsUnopt, 2)});
      First = false;
    }
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
