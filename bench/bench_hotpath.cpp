//===- bench/bench_hotpath.cpp - Hot-path kernel speedup gates ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Locks in the hot-path optimization (support/HotpathKernels.h) with two
// gated measurements plus a real-workload baseline:
//
//  1. interval-end similarity cost: a steady (Stable-state) detector's
//     per-interval-end cost, naive O(bins) recompute vs the incremental
//     engine's O(1) moment combine. Gate: >= 2x.
//  2. service batches/sec: the multi-stream MonitorService pushing
//     identical large-region batches through monitors configured with the
//     naive vs the incremental engine. Gate: >= 2x batches/sec.
//  3. baseline context in the bench_fig15_detection_cost style: one real
//     recorded workload stream through a full RegionMonitor under both
//     engines (no gate -- real streams carry small regions where shared
//     per-sample work dominates; reported for regression hunting).
//
// Both engines funnel through the same integer moments, so every
// measurement first asserts bit-identical results before timing them.
//
// Emits JSON on stdout for the BENCH_hotpath.json CI artifact; the human
// summary goes to stderr. `--smoke` shrinks iteration counts for CI while
// keeping the gates enforced (the expected margins are far above 2x).
// Exit status: 0 when both gates hold, 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "core/LocalPhaseDetector.h"
#include "service/MonitorService.h"
#include "support/HotpathKernels.h"
#include "support/Rng.h"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

namespace {

//===----------------------------------------------------------------------===//
// Stage 1: interval-end similarity cost
//===----------------------------------------------------------------------===//

/// Instruction count of the stage-1 region (a 16 KiB loop body).
constexpr std::size_t Stage1Bins = 4096;

/// Fills \p H with a deterministic, phase-steady sample pattern.
void fillSteadyPattern(InstrHistogram &H, std::uint64_t Seed,
                       std::size_t SampleCount) {
  Rng Random(Seed);
  for (std::size_t I = 0; I < SampleCount; ++I) {
    // Concentrated hotspot plus a uniform tail: realistic histogram shape
    // with nonzero variance.
    const std::uint64_t Bin = (Random.next() & 1)
                                  ? Random.nextBelow(Stage1Bins / 16)
                                  : Random.nextBelow(Stage1Bins);
    H.addSample(H.start() + static_cast<Addr>(Bin) * InstrBytes);
  }
}

struct Stage1Result {
  double NaiveNsPerEnd = 0;
  double IncrNsPerEnd = 0;
  double Speedup = 0;
  bool BitIdentical = false;
};

Stage1Result runStage1(std::size_t Iterations) {
  const std::unique_ptr<core::SimilarityMetric> Metric =
      core::makeSimilarity(core::SimilarityKind::Pearson);

  InstrHistogram Curr(0x10000,
                      0x10000 + static_cast<Addr>(Stage1Bins) * InstrBytes);
  fillSteadyPattern(Curr, /*Seed=*/42, /*SampleCount=*/2032);

  // Drive both detectors into the Stable state on the identical pattern:
  // the steady regime is where a long-running monitor spends its life, and
  // the state machine neither copies nor adopts there -- the measurement
  // isolates pure interval-end cost.
  core::LocalPhaseDetector Naive(Stage1Bins, *Metric);
  core::LocalPhaseDetector Incr(Stage1Bins, *Metric);
  std::uint64_t Sxy = 0;
  for (int I = 0; I < 4; ++I) {
    Naive.observe(Curr.bins());
    Sxy = recomputeMoments(Incr.stableSet(), Curr.bins()).Sxy;
    Incr.observeMoments(Curr, Sxy);
  }
  Stage1Result R;
  R.BitIdentical =
      Naive.state() == core::LocalPhaseState::Stable &&
      Incr.state() == core::LocalPhaseState::Stable &&
      std::bit_cast<std::uint64_t>(Naive.lastR()) ==
          std::bit_cast<std::uint64_t>(Incr.lastR());

  // In the monitor's incremental path Sxy is accumulated as samples land
  // (its cost is part of stage 2); here it is a loop-invariant operand of
  // the O(1) interval end.
  const std::uint64_t SteadySxy = Sxy;

  double Acc = 0; // consumed below so the timed calls cannot be discarded
  const double NaiveSec = timeSeconds([&] {
    for (std::size_t I = 0; I < Iterations; ++I) {
      Naive.observe(Curr.bins());
      Acc += Naive.lastR();
    }
  });
  const double IncrSec = timeSeconds([&] {
    for (std::size_t I = 0; I < Iterations; ++I) {
      Incr.observeMoments(Curr, SteadySxy);
      Acc += Incr.lastR();
    }
  });
  R.BitIdentical = R.BitIdentical &&
                   std::bit_cast<std::uint64_t>(Naive.lastR()) ==
                       std::bit_cast<std::uint64_t>(Incr.lastR()) &&
                   Acc == Acc; // NaN guard; also keeps Acc alive

  R.NaiveNsPerEnd = NaiveSec * 1e9 / static_cast<double>(Iterations);
  R.IncrNsPerEnd = IncrSec * 1e9 / static_cast<double>(Iterations);
  R.Speedup = R.IncrNsPerEnd > 0 ? R.NaiveNsPerEnd / R.IncrNsPerEnd : 0;
  return R;
}

//===----------------------------------------------------------------------===//
// Stage 2: service batches/sec
//===----------------------------------------------------------------------===//

/// One large loop region (2^18 instructions = 1 MiB of code): the regime
/// the incremental engine exists for, where O(bins) interval-end work
/// dwarfs the per-sample work of a batch.
constexpr std::size_t ServiceInstrs = std::size_t{1} << 18;
constexpr Addr ServiceStart = 0x400000;
constexpr std::size_t ServiceBatchSamples = 512;
constexpr std::size_t ServiceStreams = 4;
constexpr std::size_t ServiceWorkers = 2;
constexpr std::size_t ServiceRounds = 3;

class BigLoopMap final : public core::CodeMap {
public:
  std::optional<core::CodeRegionInfo> regionFor(Addr Pc) const override {
    constexpr Addr End =
        ServiceStart + static_cast<Addr>(ServiceInstrs) * InstrBytes;
    if (Pc >= ServiceStart && Pc < End)
      return core::CodeRegionInfo{ServiceStart, End, "bigloop"};
    return std::nullopt;
  }
};

/// The per-interval batch: an identical steady pattern, so the region
/// stabilizes after three intervals and the timed regime is the frozen
/// stable set (no per-interval prev <- curr copies on either engine).
std::vector<Sample> makeServiceBatch() {
  std::vector<Sample> Batch;
  Batch.reserve(ServiceBatchSamples);
  Rng Random(7);
  for (std::size_t I = 0; I < ServiceBatchSamples; ++I) {
    const std::uint64_t Bin = Random.nextBelow(ServiceInstrs / 64);
    Batch.push_back(
        Sample{ServiceStart + static_cast<Addr>(Bin) * InstrBytes,
               static_cast<Cycles>(100 * (I + 1))});
  }
  return Batch;
}

struct Stage2Result {
  double NaiveBatchesPerSec = 0;
  double IncrBatchesPerSec = 0;
  double Speedup = 0;
  std::uint64_t BatchesPerRun = 0;
};

double runServiceConfig(core::SimilarityEngine Engine,
                        const std::vector<Sample> &Batch,
                        std::size_t BatchesPerStream) {
  const BigLoopMap Map;
  service::MonitorService Service({ServiceWorkers, /*QueueCapacity=*/64,
                                   service::OverflowPolicy::Block,
                                   /*ValidateBatches=*/true,
                                   {}});
  core::RegionMonitorConfig Monitor;
  Monitor.Similarity = {core::SimilarityKind::Pearson, Engine};
  for (std::size_t I = 0; I < ServiceStreams; ++I)
    Service.addStream(Map, Monitor);
  Service.start();

  const double Seconds = timeSeconds([&] {
    std::vector<std::thread> Producers;
    Producers.reserve(ServiceStreams);
    for (service::StreamId Id = 0; Id < ServiceStreams; ++Id)
      Producers.emplace_back([&, Id] {
        for (std::size_t B = 0; B < BatchesPerStream; ++B)
          Service.submit({Id, Batch});
      });
    for (std::thread &T : Producers)
      T.join();
    Service.stop();
  });
  return Seconds;
}

Stage2Result runStage2(std::size_t BatchesPerStream) {
  const std::vector<Sample> Batch = makeServiceBatch();
  Stage2Result R;
  R.BatchesPerRun = BatchesPerStream * ServiceStreams;

  // Interleave the engines and keep each side's minimum: the least
  // noise-contaminated observation (bench_obs_overhead's protocol).
  double NaiveMin = 0, IncrMin = 0;
  for (std::size_t Round = 0; Round < ServiceRounds; ++Round) {
    const double Naive = runServiceConfig(core::SimilarityEngine::Naive,
                                          Batch, BatchesPerStream);
    const double Incr = runServiceConfig(
        core::SimilarityEngine::Incremental, Batch, BatchesPerStream);
    if (Round == 0 || Naive < NaiveMin)
      NaiveMin = Naive;
    if (Round == 0 || Incr < IncrMin)
      IncrMin = Incr;
  }
  R.NaiveBatchesPerSec =
      static_cast<double>(R.BatchesPerRun) / NaiveMin;
  R.IncrBatchesPerSec = static_cast<double>(R.BatchesPerRun) / IncrMin;
  R.Speedup = NaiveMin > 0 ? NaiveMin / IncrMin : 0;
  return R;
}

//===----------------------------------------------------------------------===//
// Stage 3: real-workload baseline (bench_fig15_detection_cost style)
//===----------------------------------------------------------------------===//

struct Stage3Result {
  double NaiveMs = 0;
  double IncrMs = 0;
  double Speedup = 0;
  bool Identical = false;
  std::uint64_t PhaseChanges = 0;
};

Stage3Result runStage3(std::size_t Repetitions) {
  const workloads::Workload W = workloads::make("synthetic.periodic");
  const SampleStream Stream = recordStream(W, 45'000);
  sim::ProgramCodeMap Map(W.Prog);

  auto RunEngine = [&](core::SimilarityEngine Engine, double &OutSec) {
    core::RegionMonitorConfig Cfg;
    Cfg.Similarity = {core::SimilarityKind::Pearson, Engine};
    auto Monitor = std::make_unique<core::RegionMonitor>(Map, Cfg);
    OutSec = timeSeconds([&] {
      for (std::size_t Rep = 0; Rep < Repetitions; ++Rep) {
        Monitor->reset();
        for (const auto &Interval : Stream.Intervals)
          Monitor->observeInterval(Interval);
      }
    });
    return Monitor;
  };

  double NaiveSec = 0, IncrSec = 0;
  const auto Naive = RunEngine(core::SimilarityEngine::Naive, NaiveSec);
  const auto Incr =
      RunEngine(core::SimilarityEngine::Incremental, IncrSec);

  Stage3Result R;
  R.NaiveMs = NaiveSec * 1e3 / static_cast<double>(Repetitions);
  R.IncrMs = IncrSec * 1e3 / static_cast<double>(Repetitions);
  R.Speedup = IncrSec > 0 ? NaiveSec / IncrSec : 0;
  R.PhaseChanges = Incr->totalPhaseChanges();
  R.Identical =
      Naive->totalPhaseChanges() == Incr->totalPhaseChanges() &&
      Naive->totalSamples() == Incr->totalSamples() &&
      Naive->formationTriggers() == Incr->formationTriggers();
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  const std::size_t Stage1Iters = Smoke ? 2'000 : 50'000;
  const std::size_t Stage2Batches = Smoke ? 96 : 512;
  const std::size_t Stage3Reps = Smoke ? 1 : 4;

  const Stage1Result S1 = runStage1(Stage1Iters);
  const Stage2Result S2 = runStage2(Stage2Batches);
  const Stage3Result S3 = runStage3(Stage3Reps);

  const bool Gate1 = S1.Speedup >= 2.0 && S1.BitIdentical;
  const bool Gate2 = S2.Speedup >= 2.0;
  const bool Pass = Gate1 && Gate2 && S3.Identical;

  std::fprintf(
      stderr,
      "[hotpath] kernel=%s mode=%s\n"
      "  stage1 interval-end: naive %.1f ns, incremental %.1f ns, "
      "speedup %.1fx (gate >= 2x: %s, bit-identical: %s)\n"
      "  stage2 service:      naive %.0f batches/s, incremental %.0f "
      "batches/s, speedup %.2fx (gate >= 2x: %s)\n"
      "  stage3 stream:       naive %.2f ms, incremental %.2f ms, "
      "speedup %.2fx (results identical: %s)\n",
      hotpathKernelName(), Smoke ? "smoke" : "full", S1.NaiveNsPerEnd,
      S1.IncrNsPerEnd, S1.Speedup, Gate1 ? "pass" : "FAIL",
      S1.BitIdentical ? "yes" : "NO", S2.NaiveBatchesPerSec,
      S2.IncrBatchesPerSec, S2.Speedup, Gate2 ? "pass" : "FAIL",
      S3.NaiveMs, S3.IncrMs, S3.Speedup, S3.Identical ? "yes" : "NO");

  std::printf(
      "{\n"
      "  \"bench\": \"hotpath\",\n"
      "  \"kernel\": \"%s\",\n"
      "  \"mode\": \"%s\",\n"
      "  \"interval_end_bins\": %zu,\n"
      "  \"interval_end_naive_ns\": %.2f,\n"
      "  \"interval_end_incremental_ns\": %.2f,\n"
      "  \"interval_end_speedup\": %.2f,\n"
      "  \"interval_end_gate_2x\": %s,\n"
      "  \"interval_end_bit_identical\": %s,\n"
      "  \"service_region_instrs\": %zu,\n"
      "  \"service_batches_per_run\": %llu,\n"
      "  \"service_naive_batches_per_sec\": %.1f,\n"
      "  \"service_incremental_batches_per_sec\": %.1f,\n"
      "  \"service_speedup\": %.2f,\n"
      "  \"service_gate_2x\": %s,\n"
      "  \"stream_workload\": \"synthetic.periodic\",\n"
      "  \"stream_naive_ms\": %.3f,\n"
      "  \"stream_incremental_ms\": %.3f,\n"
      "  \"stream_speedup\": %.2f,\n"
      "  \"stream_results_identical\": %s,\n"
      "  \"pass\": %s\n"
      "}\n",
      hotpathKernelName(), Smoke ? "smoke" : "full", Stage1Bins,
      S1.NaiveNsPerEnd, S1.IncrNsPerEnd, S1.Speedup,
      Gate1 ? "true" : "false", S1.BitIdentical ? "true" : "false",
      ServiceInstrs,
      static_cast<unsigned long long>(S2.BatchesPerRun),
      S2.NaiveBatchesPerSec, S2.IncrBatchesPerSec, S2.Speedup,
      Gate2 ? "true" : "false", S3.NaiveMs, S3.IncrMs, S3.Speedup,
      S3.Identical ? "true" : "false", Pass ? "true" : "false");

  return Pass ? 0 : 1;
}
