//===- bench_fig09_mcf_regions.cpp - Paper Fig. 9 -------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 9: "Regions in 181.mcf" -- the per-region sample timelines of the
// named regions 13134-133d4, 142c8-14318 and 146f0-14770. Expected shape:
// 146f0-14770 takes a large fraction of execution early and diminishes;
// 142c8-14318 starts small and grows; the tail turns periodic.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/AsciiChart.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 9] Per-region sample timelines in 181.mcf @ 45K\n\n");
  core::RegionMonitorConfig Config;
  Config.RecordTimelines = true;
  MonitorRun Run(workloads::make("181.mcf"), 45'000, Config);
  const core::RegionMonitor &M = Run.monitor();

  for (core::RegionId Id : Run.regionsBySamples()) {
    const core::Region &R = M.regions()[Id];
    std::span<const std::uint32_t> Line = M.sampleTimeline(Id);
    const std::size_t Cols = std::min<std::size_t>(96, Line.size());
    std::vector<double> Cells;
    double Peak = 1;
    for (std::size_t Col = 0; Col < Cols; ++Col) {
      const double V = Line[Col * Line.size() / Cols];
      Cells.push_back(V);
      Peak = std::max(Peak, V);
    }
    std::printf("  %-14s (formed@%llu, %8llu samples, peak %4.0f/interval)"
                "\n    |%s|\n",
                R.Name.c_str(),
                static_cast<unsigned long long>(R.FormedAtInterval),
                static_cast<unsigned long long>(M.stats(Id).TotalSamples),
                Peak, sparkline(Cells, 0, Peak).c_str());
  }
  return 0;
}
