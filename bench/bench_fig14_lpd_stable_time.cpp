//===- bench_fig14_lpd_stable_time.cpp - Paper Fig. 14 --------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 14: "Percentage of time spent in stable phase for selected
// benchmarks" under LOCAL phase detection. Expected shape: high stable
// percentages for nearly every region at every sampling period -- local
// detection minimizes the dependency on the sampling period and exposes
// far more optimization opportunity than Fig. 4's global numbers.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/TextTable.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

using namespace regmon;
using namespace regmon::bench;

int main() {
  std::printf("[Fig. 14] Per-region %% of lifetime locally stable vs "
              "sampling period\n\n");
  TextTable Table;
  Table.header({"benchmark", "region", "45K", "450K", "900K"});

  for (const std::string &Name : workloads::fig13Names()) {
    std::map<std::string, std::array<double, 3>> Fractions;
    std::vector<std::string> Order;
    for (std::size_t P = 0; P < 3; ++P) {
      MonitorRun Run(workloads::make(Name), SweepPeriods[P]);
      for (core::RegionId Id : Run.regionsBySamples()) {
        const std::string &RName = Run.monitor().regions()[Id].Name;
        auto [It, Inserted] = Fractions.try_emplace(RName);
        if (Inserted)
          It->second = {};
        It->second[P] = Run.monitor().stats(Id).stableFraction();
        if (P == 0)
          Order.push_back(RName);
      }
    }
    for (const auto &[RName, Row] : Fractions)
      if (std::find(Order.begin(), Order.end(), RName) == Order.end())
        Order.push_back(RName);

    std::size_t Rank = 1;
    for (const std::string &RName : Order) {
      const auto &Row = Fractions[RName];
      std::string Label = "r";
      Label += std::to_string(Rank);
      Label += " ";
      Label += RName;
      Table.row({Rank == 1 ? Name : "", Label, TextTable::percent(Row[0]),
                 TextTable::percent(Row[1]), TextTable::percent(Row[2])});
      ++Rank;
    }
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
