//===- bench/bench_recovery.cpp - Warm vs cold restart cost ---------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the checkpoint/restore layer buys a dynamic optimizer: a
// cold-started monitor must re-learn its regions and phase tables before
// it can vouch for stability, while a warm restart resumes from the
// snapshot already trained. Per workload we report intervals-to-first-
// stable-phase for both starts (the optimizer cannot deploy anything
// before that point), plus the wall-clock cost of restoring versus
// replaying the full stream and the on-disk snapshot size.
//
// Emits one JSON document on stdout (CI tees it into BENCH_recovery.json);
// the human-readable table goes to stderr.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "persist/Bytes.h"
#include "persist/Checkpoint.h"
#include "persist/Io.h"
#include "persist/StateCodec.h"
#include "sampling/Sampler.h"
#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/TextTable.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::bench;

namespace {

constexpr Cycles Period = 45'000;

struct Result {
  std::string Workload;
  std::uint64_t ColdIntervals = 0; ///< intervals to first stable phase
  std::uint64_t WarmIntervals = 0; ///< same, resuming from the snapshot
  double ColdReplaySeconds = 0;    ///< full-stream replay wall clock
  double RestoreSeconds = 0;       ///< snapshot + journal recovery wall clock
  std::uint64_t SnapshotBytes = 0;
  std::string Outcome;
};

bool anyStable(const core::RegionMonitor &M) {
  for (const core::Region &R : M.regions())
    if (M.detector(R.Id).state() == core::LocalPhaseState::Stable)
      return true;
  return false;
}

/// Feeds \p Intervals into \p M until some region reports a stable phase;
/// returns how many intervals that took (all of them if never stable).
std::uint64_t
intervalsToStable(core::RegionMonitor &M,
                  const std::vector<std::vector<Sample>> &Intervals) {
  std::uint64_t Count = 0;
  for (const std::vector<Sample> &Interval : Intervals) {
    if (anyStable(M))
      return Count;
    M.observeInterval(Interval);
    ++Count;
  }
  return Count;
}

Result runWorkload(const std::string &Name) {
  Result Res;
  Res.Workload = Name;

  const workloads::Workload W = workloads::make(Name);
  sim::ProgramCodeMap Map(W.Prog);
  sim::Engine Engine(W.Prog, W.Script, BenchSeed);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  const std::vector<std::vector<Sample>> Intervals =
      Sampler.collectIntervals();

  // Cold start: intervals until the monitor first vouches for stability.
  {
    core::RegionMonitor Cold(Map);
    Res.ColdIntervals = intervalsToStable(Cold, Intervals);
  }

  // Train a persisted service on the full stream and checkpoint it.
  const std::string Dir =
      (std::filesystem::temp_directory_path() / "regmon_bench_recovery")
          .string() +
      "_" + Name;
  std::filesystem::remove_all(Dir);
  const service::ServiceConfig Config{/*Workers=*/1, /*QueueCapacity=*/8,
                                      service::OverflowPolicy::Block,
                                      /*ValidateBatches=*/true, {}};
  {
    persist::CheckpointManager Store(Dir);
    service::MonitorService Service(Config);
    const service::StreamId Id = Service.addStream(Map);
    Service.attachPersistence(Store);
    Service.restore();
    Service.start();
    for (const std::vector<Sample> &Interval : Intervals)
      Service.submit({Id, Interval});
    Service.stop();
    Service.checkpoint();
  }
  if (const auto Snap = persist::readFileBytes(Dir + "/snapshot.bin"))
    Res.SnapshotBytes = Snap->size();

  // Cold replay cost: what reaching the same trained state costs without
  // the snapshot -- reprocessing the entire stream.
  {
    const auto Start = std::chrono::steady_clock::now();
    core::RegionMonitor Replay(Map);
    for (const std::vector<Sample> &Interval : Intervals)
      Replay.observeInterval(Interval);
    Res.ColdReplaySeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
  }

  // Warm restart: recover the trained service, then measure how long the
  // restored monitor takes to vouch for stability on the resumed stream.
  {
    persist::CheckpointManager Store(Dir);
    service::MonitorService Service(Config);
    const service::StreamId Id = Service.addStream(Map);
    Service.attachPersistence(Store);
    const auto Start = std::chrono::steady_clock::now();
    const service::RestoreOutcome Outcome = Service.restore();
    Res.RestoreSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    Res.Outcome = service::toString(Outcome);
    core::RegionMonitor Warm(Map);
    {
      // Clone the recovered monitor through the snapshot codec so the
      // measurement runs on exactly what a restart would run on.
      persist::ByteWriter Enc;
      persist::StateCodec::encode(Enc, Service.monitor(Id));
      persist::ByteReader Dec(Enc.data());
      persist::StateCodec::decode(Dec, Warm);
    }
    Res.WarmIntervals = intervalsToStable(Warm, Intervals);
  }
  std::filesystem::remove_all(Dir);
  return Res;
}

} // namespace

int main() {
  const char *Workloads[] = {"synthetic.steady", "synthetic.periodic",
                             "synthetic.bottleneck", "synthetic.pollution"};
  std::vector<Result> Results;
  for (const char *Name : Workloads)
    Results.push_back(runWorkload(Name));

  TextTable Table;
  Table.header({"workload", "cold ivals", "warm ivals", "cold replay ms",
                "restore ms", "snapshot KiB", "outcome"});
  for (const Result &R : Results)
    Table.row({R.Workload, TextTable::count(R.ColdIntervals),
               TextTable::count(R.WarmIntervals),
               TextTable::num(R.ColdReplaySeconds * 1e3, 2),
               TextTable::num(R.RestoreSeconds * 1e3, 2),
               TextTable::num(static_cast<double>(R.SnapshotBytes) / 1024.0,
                              1),
               R.Outcome});
  std::fprintf(stderr, "warm vs cold restart, time to first stable phase\n%s",
               Table.render().c_str());

  std::printf("{\n  \"bench\": \"recovery\",\n  \"period\": %llu,\n"
              "  \"workloads\": [\n",
              static_cast<unsigned long long>(Period));
  for (std::size_t I = 0; I < Results.size(); ++I) {
    const Result &R = Results[I];
    std::printf("    {\"name\": \"%s\", \"cold_intervals_to_stable\": %llu, "
                "\"warm_intervals_to_stable\": %llu, "
                "\"cold_replay_seconds\": %.6f, \"restore_seconds\": %.6f, "
                "\"snapshot_bytes\": %llu, \"restore_outcome\": \"%s\"}%s\n",
                R.Workload.c_str(),
                static_cast<unsigned long long>(R.ColdIntervals),
                static_cast<unsigned long long>(R.WarmIntervals),
                R.ColdReplaySeconds, R.RestoreSeconds,
                static_cast<unsigned long long>(R.SnapshotBytes),
                R.Outcome.c_str(), I + 1 < Results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
