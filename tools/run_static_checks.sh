#!/usr/bin/env bash
#===- tools/run_static_checks.sh - one-shot static analysis driver -------===#
#
# Part of the regmon project. Distributed under the MIT license.
#
# Runs the full static-analysis stack in one command:
#
#   1. a -Werror build (REGMON_WERROR=ON is the default) into
#      build-checks/, which also produces the regmon-lint binary,
#   2. regmon-lint over src/, tools/ and bench/ against the checked-in
#      baseline (tools/lint/baseline.txt),
#   3. clang-tidy via tools/run_clang_tidy.sh (skipped with a notice when
#      clang-tidy is not installed).
#
# usage: tools/run_static_checks.sh [--json]
#
#   --json   emit the regmon-lint report as JSON on stdout
#
# Exits nonzero on the first failing stage.
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."

lint_args=()
if [[ "${1:-}" == "--json" ]]; then
  lint_args+=(--json)
  shift
fi
[[ $# -eq 0 ]] || { echo "usage: $0 [--json]" >&2; exit 2; }

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== static checks: -Werror build (build-checks/) ==="
cmake -B build-checks -S . -DREGMON_WERROR=ON >/dev/null
cmake --build build-checks -j "$jobs"

echo "=== static checks: regmon-lint ==="
./build-checks/tools/lint/regmon-lint --root . \
  --baseline tools/lint/baseline.txt "${lint_args[@]}"

echo "=== static checks: clang-tidy ==="
tools/run_clang_tidy.sh

echo "=== static checks: OK ==="
