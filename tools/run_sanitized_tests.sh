#!/usr/bin/env bash
#===- tools/run_sanitized_tests.sh - TSan/ASan test sweeps ---------------===#
#
# Part of the regmon project. Distributed under the MIT license.
#
# Builds the repo with -DREGMON_SANITIZER=<san> and runs the test suite
# under each requested sanitizer. The concurrency suite
# (ServiceConcurrencyTest / ServiceRingBufferTest) is the primary
# customer: TSan proves the service's shard pinning and snapshot
# publication race-free, ASan guards the batch hand-off paths, and UBSan
# (with -fno-sanitize-recover=all) vetoes the undefined behavior that
# would let the optimizer void the determinism argument entirely.
#
# usage: tools/run_sanitized_tests.sh [thread] [address] [undefined]
#                                     [-R <ctest-regex>]
#
#   no sanitizer args  run the TSan, ASan and UBSan sweeps
#   -R <regex>         restrict to matching tests, e.g. -R 'Service|RingBuffer'
#
# Each sanitizer gets its own build tree (build-tsan/, build-asan/,
# build-ubsan/), so sweeps are incremental across invocations.
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."

sans=()
regex=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    thread|address|undefined) sans+=("$1"); shift ;;
    -R) [[ $# -ge 2 ]] || { echo "error: -R needs a regex" >&2; exit 2; }
        regex="$2"; shift 2 ;;
    *) echo "usage: $0 [thread] [address] [undefined] [-R <ctest-regex>]" >&2
       exit 2 ;;
  esac
done
[[ ${#sans[@]} -gt 0 ]] || sans=(thread address undefined)

jobs="$(nproc 2>/dev/null || echo 2)"

for san in "${sans[@]}"; do
  case "$san" in
    thread)    build="build-tsan" ;;
    address)   build="build-asan" ;;
    undefined) build="build-ubsan" ;;
  esac
  echo "=== ${san} sanitizer: configuring ${build}/ ==="
  cmake -B "$build" -S . -DREGMON_SANITIZER="$san" >/dev/null
  echo "=== ${san} sanitizer: building ==="
  cmake --build "$build" -j "$jobs"
  echo "=== ${san} sanitizer: running tests ==="
  ctest --test-dir "$build" --output-on-failure -j "$jobs" \
    ${regex:+-R "$regex"}
  echo "=== ${san} sanitizer: OK ==="
done
