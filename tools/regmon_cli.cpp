//===- tools/regmon_cli.cpp - Command-line driver -------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// One binary to drive everything in the library:
//
//   regmon-cli list
//   regmon-cli gpd <workload> [--period N] [--seed N]
//   regmon-cli monitor <workload> [--period N] [--seed N]
//                      [--similarity pearson|cosine|overlap]
//                      [--attribution tree|list] [--adaptive-rt]
//                      [--miss-phases] [--prune N]
//   regmon-cli rto <workload> [--period N] [--seed N]
//                  [--self-monitor off|oracle|observed]
//   regmon-cli sweep <workload> [--seed N]
//   regmon-cli serve <workload> [--streams N] [--workers N] [--period N]
//                    [--seed N] [--queue N] [--policy block|drop]
//                    [--intervals N]
//   regmon-cli checkpoint <workload> --dir PATH [serve flags]
//   regmon-cli restore <workload> --dir PATH [serve flags]
//   regmon-cli stats <workload> [--period N] [--seed N] [monitor flags]
//                    [--format prom|json]
//   regmon-cli trace <workload> [--period N] [--seed N] [monitor flags]
//   regmon-cli fleet <workload> [--leaves N] [--fanout N] [--epochs N]
//                    [--streams-per-leaf N] [--period N] [--seed N]
//                    [--crash-rate P] [--stall-rate P] [--drop-rate P]
//                    [--dup-rate P] [--reorder-rate P] [--stale-rate P]
//                    [--staleness N] [--dir PATH] [--metrics prom|json]
//   regmon-cli record <workload> --trace PATH [serve flags]
//                     [--corrupt-rate P] [--truncate-rate P]
//                     [--poison-rate P] [--drop-rate P] [--crash-bytes N]
//                     [--export PATH] [--dir PATH]
//   regmon-cli replay <workload> --trace PATH [serve topology flags]
//                     [--format prom|json] [--dir PATH]
//   regmon-cli trace-verify --trace PATH [--repair]
//
// Exit codes: 0 success, 1 runtime failure (damaged trace, divergence,
// failed commit), 2 usage error (unknown command/flag, missing argument).
// --help/-h/help print the usage on stdout and exit 0.
//
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"
#include "faults/FaultPlan.h"
#include "fleet/FleetTree.h"
#include "gpd/CentroidPhaseDetector.h"
#include "obs/Export.h"
#include "obs/Instruments.h"
#include "persist/Checkpoint.h"
#include "persist/Io.h"
#include "rto/Harness.h"
#include "sampling/Sampler.h"
#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/TextTable.h"
#include "trace/Recorder.h"
#include "trace/Replay.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace regmon;

namespace {

struct Options {
  std::string Command;
  std::string Workload;
  Cycles Period = 45'000;
  std::uint64_t Seed = 1;
  core::SimilarityKind Similarity = core::SimilarityKind::Pearson;
  core::AttributorKind Attribution = core::AttributorKind::IntervalTree;
  bool AdaptiveRt = false;
  bool MissPhases = false;
  std::optional<std::uint64_t> PruneAfter;
  rto::SelfMonitorMode SelfMonitor = rto::SelfMonitorMode::Observational;
  std::size_t Streams = 8;
  std::size_t Workers = 4;
  std::size_t QueueCapacity = 64;
  service::OverflowPolicy Policy = service::OverflowPolicy::Block;
  std::size_t MaxIntervals = SIZE_MAX;
  std::string Dir;
  std::string Format = "prom";
  // fleet command
  std::uint32_t Leaves = 8;
  std::uint32_t Fanout = 4;
  std::uint32_t StreamsPerLeaf = 1;
  std::uint64_t Epochs = 12;
  double CrashRate = 0;
  double StallRate = 0;
  double DropRate = 0;
  double DupRate = 0;
  double ReorderRate = 0;
  double StaleRate = 0;
  std::uint64_t Staleness = 8;
  std::string Metrics; ///< empty = human report
  // record / replay / trace-verify
  std::string Trace;  ///< trace file path
  std::string Export; ///< where record writes the run's obs export
  std::uint64_t CrashBytes = 0; ///< recorder I/O budget; 0 = unlimited
  bool Repair = false;
  double CorruptRate = 0;
  double TruncateRate = 0;
  double PoisonRate = 0;
};

void printUsage(std::FILE *To, const char *Prog) {
  std::fprintf(
      To,
      "usage: %s <command> [args]\n"
      "  list                      list available workloads\n"
      "  gpd <workload>            run global (centroid) phase detection\n"
      "  monitor <workload>        run region monitoring (LPD)\n"
      "  rto <workload>            compare RTO-ORIG vs RTO-LPD\n"
      "  sweep <workload>          GPD + LPD summary at 45K/450K/900K\n"
      "  serve <workload>          multi-stream monitoring service\n"
      "  checkpoint <workload>     serve with durability, then snapshot\n"
      "  restore <workload>        recover service state from a directory\n"
      "  stats <workload>          run LPD + GPD, export metrics\n"
      "  trace <workload>          run LPD + GPD, print the event trace\n"
      "  fleet <workload>          hierarchical fleet aggregation demo\n"
      "  record <workload>         serve under a flight recorder\n"
      "  replay <workload>         re-drive a recorded trace, export metrics\n"
      "  trace-verify              scan a trace file, optionally repair it\n"
      "common flags: --period N --seed N\n"
      "monitor flags: --similarity pearson|cosine|overlap "
      "--attribution tree|list\n"
      "               --adaptive-rt --miss-phases --prune N\n"
      "rto flags: --self-monitor off|oracle|observed\n"
      "serve flags: --streams N --workers N --queue N "
      "--policy block|drop --intervals N\n"
      "checkpoint/restore flags: serve flags plus --dir PATH (required;\n"
      "  the same topology flags must be used across runs on one dir)\n"
      "stats flags: monitor flags plus --format prom|json\n"
      "fleet flags: --leaves N --fanout N --epochs N --streams-per-leaf N\n"
      "             --crash-rate P --stall-rate P --drop-rate P --dup-rate P\n"
      "             --reorder-rate P --stale-rate P --staleness N\n"
      "             --dir PATH (leaf checkpoints) --metrics prom|json\n"
      "record flags: serve flags plus --trace PATH (required)\n"
      "              --corrupt-rate P --truncate-rate P --poison-rate P\n"
      "              --drop-rate P (sample loss) --crash-bytes N (kill the\n"
      "              recorder after N I/O units) --export PATH (write the\n"
      "              run's metrics) --dir PATH (checkpoint at the end)\n"
      "replay flags: --trace PATH (required) plus the recording run's\n"
      "              topology flags; --format prom|json --dir PATH\n"
      "              (re-apply recorded checkpoints into PATH)\n"
      "trace-verify flags: --trace PATH (required) --repair (truncate a\n"
      "              damaged trace to its valid prefix)\n",
      Prog);
}

int usage(const char *Prog) {
  printUsage(stderr, Prog);
  return 2;
}

bool parseFlag(int Argc, char **Argv, int &I, Options &Opts) {
  const std::string Flag = Argv[I];
  const auto Next = [&]() -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Flag.c_str());
      std::exit(2);
    }
    return Argv[++I];
  };
  if (Flag == "--period") {
    Opts.Period = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--seed") {
    Opts.Seed = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--similarity") {
    const std::string V = Next();
    if (V == "pearson")
      Opts.Similarity = core::SimilarityKind::Pearson;
    else if (V == "cosine")
      Opts.Similarity = core::SimilarityKind::Cosine;
    else if (V == "overlap")
      Opts.Similarity = core::SimilarityKind::Overlap;
    else {
      std::fprintf(stderr, "error: unknown similarity '%s'\n", V.c_str());
      std::exit(2);
    }
    return true;
  }
  if (Flag == "--attribution") {
    const std::string V = Next();
    if (V == "tree")
      Opts.Attribution = core::AttributorKind::IntervalTree;
    else if (V == "list")
      Opts.Attribution = core::AttributorKind::List;
    else {
      std::fprintf(stderr, "error: unknown attribution '%s'\n", V.c_str());
      std::exit(2);
    }
    return true;
  }
  if (Flag == "--adaptive-rt") {
    Opts.AdaptiveRt = true;
    return true;
  }
  if (Flag == "--miss-phases") {
    Opts.MissPhases = true;
    return true;
  }
  if (Flag == "--prune") {
    Opts.PruneAfter = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--streams") {
    Opts.Streams = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--workers") {
    Opts.Workers = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--queue") {
    Opts.QueueCapacity = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--intervals") {
    Opts.MaxIntervals = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--policy") {
    const std::string V = Next();
    if (V == "block")
      Opts.Policy = service::OverflowPolicy::Block;
    else if (V == "drop")
      Opts.Policy = service::OverflowPolicy::DropOldest;
    else {
      std::fprintf(stderr, "error: unknown policy '%s'\n", V.c_str());
      std::exit(2);
    }
    return true;
  }
  if (Flag == "--dir") {
    Opts.Dir = Next();
    return true;
  }
  if (Flag == "--format") {
    Opts.Format = Next();
    if (Opts.Format != "prom" && Opts.Format != "json") {
      std::fprintf(stderr, "error: unknown format '%s'\n",
                   Opts.Format.c_str());
      std::exit(2);
    }
    return true;
  }
  if (Flag == "--leaves") {
    Opts.Leaves = static_cast<std::uint32_t>(std::strtoul(Next(), nullptr, 10));
    return true;
  }
  if (Flag == "--fanout") {
    Opts.Fanout = static_cast<std::uint32_t>(std::strtoul(Next(), nullptr, 10));
    return true;
  }
  if (Flag == "--streams-per-leaf") {
    Opts.StreamsPerLeaf =
        static_cast<std::uint32_t>(std::strtoul(Next(), nullptr, 10));
    return true;
  }
  if (Flag == "--epochs") {
    Opts.Epochs = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--crash-rate") {
    Opts.CrashRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--stall-rate") {
    Opts.StallRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--drop-rate") {
    Opts.DropRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--dup-rate") {
    Opts.DupRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--reorder-rate") {
    Opts.ReorderRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--stale-rate") {
    Opts.StaleRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--staleness") {
    Opts.Staleness = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--metrics") {
    Opts.Metrics = Next();
    if (Opts.Metrics != "prom" && Opts.Metrics != "json") {
      std::fprintf(stderr, "error: unknown metrics format '%s'\n",
                   Opts.Metrics.c_str());
      std::exit(2);
    }
    return true;
  }
  if (Flag == "--trace") {
    Opts.Trace = Next();
    return true;
  }
  if (Flag == "--export") {
    Opts.Export = Next();
    return true;
  }
  if (Flag == "--crash-bytes") {
    Opts.CrashBytes = std::strtoull(Next(), nullptr, 10);
    return true;
  }
  if (Flag == "--repair") {
    Opts.Repair = true;
    return true;
  }
  if (Flag == "--corrupt-rate") {
    Opts.CorruptRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--truncate-rate") {
    Opts.TruncateRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--poison-rate") {
    Opts.PoisonRate = std::strtod(Next(), nullptr);
    return true;
  }
  if (Flag == "--self-monitor") {
    const std::string V = Next();
    if (V == "off")
      Opts.SelfMonitor = rto::SelfMonitorMode::Off;
    else if (V == "oracle")
      Opts.SelfMonitor = rto::SelfMonitorMode::GroundTruth;
    else if (V == "observed")
      Opts.SelfMonitor = rto::SelfMonitorMode::Observational;
    else {
      std::fprintf(stderr, "error: unknown self-monitor mode '%s'\n",
                   V.c_str());
      std::exit(2);
    }
    return true;
  }
  return false;
}

int cmdList() {
  TextTable Table;
  Table.header({"workload", "loops", "total work (Gcycles)"});
  for (const std::string &Name : workloads::allNames()) {
    const workloads::Workload W = workloads::make(Name);
    Table.row({Name, TextTable::count(W.Prog.loops().size()),
               TextTable::num(W.Script.totalWork() / 1e9, 1)});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdGpd(const Options &Opts) {
  const workloads::Workload W = workloads::make(Opts.Workload);
  sim::Engine Engine(W.Prog, W.Script, Opts.Seed);
  sampling::Sampler Sampler(Engine, {Opts.Period, 2032});
  gpd::CentroidPhaseDetector Detector;
  Sampler.run([&](std::span<const Sample> Buffer) {
    Detector.observeInterval(Buffer);
  });
  std::printf("%s @ %llu cycles/interrupt (GPD)\n", Opts.Workload.c_str(),
              static_cast<unsigned long long>(Opts.Period));
  std::printf("  intervals:      %llu\n",
              static_cast<unsigned long long>(Detector.intervals()));
  std::printf("  phase changes:  %llu\n",
              static_cast<unsigned long long>(Detector.phaseChanges()));
  std::printf("  %% time stable:  %.1f%%\n",
              Detector.stableFraction() * 100.0);
  std::printf("  final state:    %s\n", gpd::toString(Detector.state()));
  return 0;
}

int cmdMonitor(const Options &Opts) {
  const workloads::Workload W = workloads::make(Opts.Workload);
  sim::Engine Engine(W.Prog, W.Script, Opts.Seed);
  sampling::Sampler Sampler(Engine, {Opts.Period, 2032});
  sim::ProgramCodeMap Map(W.Prog);

  core::RegionMonitorConfig Config;
  Config.Similarity = Opts.Similarity;
  Config.Attribution = Opts.Attribution;
  Config.Lpd.AdaptiveThreshold = Opts.AdaptiveRt;
  Config.TrackMissPhases = Opts.MissPhases;
  if (Opts.PruneAfter) {
    Config.PruneColdRegions = true;
    Config.PruneAfterIdleIntervals = *Opts.PruneAfter;
  }
  core::RegionMonitor Monitor(Map, Config);
  Sampler.run([&](std::span<const Sample> Buffer) {
    Monitor.observeInterval(Buffer);
  });

  std::printf("%s @ %llu cycles/interrupt (region monitoring)\n",
              Opts.Workload.c_str(),
              static_cast<unsigned long long>(Opts.Period));
  std::printf("  intervals %llu, formation triggers %llu, last UCR %.1f%%\n\n",
              static_cast<unsigned long long>(Monitor.intervals()),
              static_cast<unsigned long long>(Monitor.formationTriggers()),
              Monitor.lastUcrFraction() * 100.0);

  TextTable Table;
  std::vector<std::string> Header = {"region",   "samples", "changes",
                                     "% stable", "last r",  "DPI"};
  if (Opts.MissPhases)
    Header.push_back("miss changes");
  Table.header(std::move(Header));
  for (core::RegionId Id : Monitor.activeRegionIds()) {
    const core::Region &R = Monitor.regions()[Id];
    const core::RegionStats &S = Monitor.stats(Id);
    std::vector<std::string> Row = {
        R.Name,
        TextTable::count(S.TotalSamples),
        TextTable::count(S.PhaseChanges),
        TextTable::percent(S.stableFraction()),
        TextTable::num(Monitor.detector(Id).lastR(), 3),
        TextTable::percent(S.missFraction())};
    if (Opts.MissPhases)
      Row.push_back(TextTable::count(S.MissPhaseChanges));
    Table.row(std::move(Row));
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdRto(const Options &Opts) {
  const workloads::Workload W = workloads::make(Opts.Workload);
  const rto::OptimizationModel Model = W.model();
  rto::RtoConfig Config;
  Config.Sampling.PeriodCycles = Opts.Period;
  Config.SelfMonitor = Opts.SelfMonitor;

  const rto::RtoResult Unopt =
      rto::runUnoptimized(W.Prog, W.Script, Opts.Seed, Config);
  const rto::RtoResult Orig =
      rto::runOriginal(W.Prog, W.Script, Model, Opts.Seed, Config);
  const rto::RtoResult Lpd =
      rto::runLocal(W.Prog, W.Script, Model, Opts.Seed, Config);

  TextTable Table;
  Table.header({"system", "cycles", "vs unoptimized", "stable%", "patches",
                "unpatches", "self-undos"});
  const auto Gain = [&](const rto::RtoResult &R) {
    return TextTable::percent(static_cast<double>(Unopt.TotalCycles) /
                                      static_cast<double>(R.TotalCycles) -
                                  1.0,
                              2);
  };
  Table.row({"unoptimized", TextTable::count(Unopt.TotalCycles), "0.00%",
             "", "0", "0", "0"});
  Table.row({"RTO-ORIG", TextTable::count(Orig.TotalCycles), Gain(Orig),
             TextTable::percent(Orig.StableFraction),
             TextTable::count(Orig.Patches),
             TextTable::count(Orig.Unpatches), "0"});
  Table.row({"RTO-LPD", TextTable::count(Lpd.TotalCycles), Gain(Lpd),
             TextTable::percent(Lpd.StableFraction),
             TextTable::count(Lpd.Patches),
             TextTable::count(Lpd.Unpatches),
             TextTable::count(Lpd.SelfUndos)});
  std::printf("%s\nLPD speedup over ORIG: %.2f%%\n", Table.render().c_str(),
              rto::speedupPercent(Orig, Lpd));
  return 0;
}

int cmdSweep(const Options &Opts) {
  TextTable Table;
  Table.header({"period", "GPD changes", "GPD stable%", "LPD changes",
                "regions", "median region stable%"});
  for (const Cycles Period : {45'000u, 450'000u, 900'000u}) {
    const workloads::Workload W = workloads::make(Opts.Workload);
    sim::Engine Engine(W.Prog, W.Script, Opts.Seed);
    sampling::Sampler Sampler(Engine, {Period, 2032});
    sim::ProgramCodeMap Map(W.Prog);
    core::RegionMonitor Monitor(Map);
    gpd::CentroidPhaseDetector Gpd;
    Sampler.run([&](std::span<const Sample> Buffer) {
      Monitor.observeInterval(Buffer);
      Gpd.observeInterval(Buffer);
    });
    std::uint64_t LpdChanges = 0;
    std::vector<double> Stable;
    for (core::RegionId Id : Monitor.activeRegionIds()) {
      LpdChanges += Monitor.stats(Id).PhaseChanges;
      Stable.push_back(Monitor.stats(Id).stableFraction());
    }
    Table.row({TextTable::count(Period),
               TextTable::count(Gpd.phaseChanges()),
               TextTable::percent(Gpd.stableFraction()),
               TextTable::count(LpdChanges),
               TextTable::count(Monitor.activeRegionIds().size()),
               TextTable::percent(median(Stable))});
  }
  std::printf("%s (GPD vs LPD across sampling periods)\n%s",
              Opts.Workload.c_str(), Table.render().c_str());
  return 0;
}

// Each stream runs a private copy of the workload, seeded differently,
// with its own code map -- N independent cores executing the program.
struct Stream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
};

std::vector<Stream> makeStreams(const Options &Opts) {
  std::vector<Stream> Streams;
  Streams.reserve(Opts.Streams);
  for (std::size_t I = 0; I < Opts.Streams; ++I) {
    Stream S;
    S.W = std::make_unique<workloads::Workload>(
        workloads::make(Opts.Workload));
    S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
    Streams.push_back(std::move(S));
  }
  return Streams;
}

void printStreamTable(const service::ServiceSnapshot &Snap) {
  TextTable Table;
  Table.header({"stream", "shard", "intervals", "regions", "changes",
                "triggers", "UCR%"});
  for (const service::StreamSnapshot &St : Snap.Streams)
    Table.row({TextTable::count(St.Stream), TextTable::count(St.Shard),
               TextTable::count(St.IntervalsProcessed),
               TextTable::count(St.ActiveRegions),
               TextTable::count(St.PhaseChanges),
               TextTable::count(St.FormationTriggers),
               TextTable::percent(St.ucrFraction())});
  std::printf("%s", Table.render().c_str());
}

void printRecovery(const persist::RecoveryCounters &C) {
  std::printf("  recovery: %llu replayed, %llu skipped, %llu corrupt "
              "snapshot(s), %llu fallback(s), %llu cold start(s), "
              "%llu torn tail(s) (%llu repaired)\n",
              static_cast<unsigned long long>(C.JournalRecordsReplayed),
              static_cast<unsigned long long>(C.JournalRecordsSkipped),
              static_cast<unsigned long long>(C.CorruptSnapshots),
              static_cast<unsigned long long>(C.FallbacksUsed),
              static_cast<unsigned long long>(C.ColdStarts),
              static_cast<unsigned long long>(C.JournalTornTails),
              static_cast<unsigned long long>(C.JournalRepairs));
  if (C.LastError != persist::SnapshotError::None)
    std::printf("  last snapshot error: %s\n",
                persist::toString(C.LastError));
}

int cmdServe(const Options &Opts) {
  if (Opts.Streams == 0 || Opts.Workers == 0 || Opts.QueueCapacity == 0) {
    std::fprintf(stderr,
                 "error: --streams, --workers and --queue must be > 0\n");
    return 2;
  }
  const std::vector<Stream> Streams = makeStreams(Opts);

  service::MonitorService Service(
      {Opts.Workers, Opts.QueueCapacity, Opts.Policy,
       /*ValidateBatches=*/true, {}});
  for (const Stream &S : Streams)
    Service.addStream(*S.Map);
  Service.start();

  // One live producer per stream: sample the engine and submit each
  // buffer overflow as a batch, exactly as per-core HPM drivers would.
  std::vector<std::thread> Producers;
  Producers.reserve(Streams.size());
  for (service::StreamId Id = 0; Id < Streams.size(); ++Id)
    Producers.emplace_back([&, Id] {
      const Stream &S = Streams[Id];
      sim::Engine Engine(S.W->Prog, S.W->Script, Opts.Seed + Id);
      sampling::Sampler Sampler(Engine, {Opts.Period, 2032});
      std::vector<Sample> Buffer;
      std::size_t Sent = 0;
      while (Sent < Opts.MaxIntervals && Sampler.fillBuffer(Buffer)) {
        if (!Service.submit({Id, Buffer}))
          break;
        ++Sent;
      }
    });
  for (std::thread &T : Producers)
    T.join();
  Service.stop();

  const service::ServiceSnapshot Snap = Service.snapshot();
  std::printf("%s x %zu streams @ %llu cycles/interrupt "
              "(%zu workers, queue %zu, policy %s)\n",
              Opts.Workload.c_str(), Opts.Streams,
              static_cast<unsigned long long>(Opts.Period), Opts.Workers,
              Opts.QueueCapacity, service::toString(Opts.Policy));
  std::printf("  batches: %llu submitted, %llu processed, %llu dropped\n",
              static_cast<unsigned long long>(Snap.BatchesSubmitted),
              static_cast<unsigned long long>(Snap.BatchesProcessed),
              static_cast<unsigned long long>(Snap.BatchesDropped));
  std::printf("  aggregate: %llu intervals, %llu phase changes, "
              "UCR %.1f%%\n\n",
              static_cast<unsigned long long>(Snap.IntervalsProcessed),
              static_cast<unsigned long long>(Snap.PhaseChanges),
              Snap.ucrFraction() * 100.0);

  printStreamTable(Snap);
  return 0;
}

// serve with durability attached: recover whatever the directory holds,
// process (journaled) batches, then commit a snapshot. Re-running the
// command on the same directory continues where the last run stopped --
// and killing it mid-run loses nothing but the un-acked tail.
int cmdCheckpoint(const Options &Opts) {
  if (Opts.Streams == 0 || Opts.Workers == 0 || Opts.QueueCapacity == 0) {
    std::fprintf(stderr,
                 "error: --streams, --workers and --queue must be > 0\n");
    return 2;
  }
  if (Opts.Dir.empty()) {
    std::fprintf(stderr, "error: checkpoint needs --dir PATH\n");
    return 2;
  }
  const std::vector<Stream> Streams = makeStreams(Opts);

  persist::CheckpointManager Store(Opts.Dir);
  service::MonitorService Service(
      {Opts.Workers, Opts.QueueCapacity, Opts.Policy,
       /*ValidateBatches=*/true, {}});
  for (const Stream &S : Streams)
    Service.addStream(*S.Map);
  Service.attachPersistence(Store);
  const service::RestoreOutcome Outcome = Service.restore();
  const std::uint64_t StartSeq = Service.persistedSequence();
  std::printf("restored from %s: %s (sequence %llu)\n", Opts.Dir.c_str(),
              service::toString(Outcome),
              static_cast<unsigned long long>(StartSeq));
  Service.start();

  // One live producer per stream. The engines are deterministic in
  // (workload, seed), so a restored stream resumes by re-deriving the
  // sample sequence and skipping the intervals recovery already owns --
  // each run then contributes up to --intervals *new* intervals.
  std::vector<std::uint64_t> Resume(Streams.size(), 0);
  for (const service::StreamSnapshot &St : Service.snapshot().Streams)
    Resume[St.Stream] = St.BatchesProcessed;
  std::vector<std::thread> Producers;
  Producers.reserve(Streams.size());
  for (service::StreamId Id = 0; Id < Streams.size(); ++Id)
    Producers.emplace_back([&, Id] {
      const Stream &S = Streams[Id];
      sim::Engine Engine(S.W->Prog, S.W->Script, Opts.Seed + Id);
      sampling::Sampler Sampler(Engine, {Opts.Period, 2032});
      std::vector<Sample> Buffer;
      std::uint64_t Skip = Resume[Id];
      std::size_t Sent = 0;
      while (Sent < Opts.MaxIntervals && Sampler.fillBuffer(Buffer)) {
        if (Skip > 0) {
          --Skip;
          continue;
        }
        if (!Service.submit({Id, Buffer}))
          break;
        ++Sent;
      }
    });
  for (std::thread &T : Producers)
    T.join();
  Service.stop();

  const bool Committed = Service.checkpoint();
  const service::ServiceSnapshot Snap = Service.snapshot();
  std::printf("%s x %zu streams @ %llu cycles/interrupt, journaled "
              "sequence %llu -> %llu\n",
              Opts.Workload.c_str(), Opts.Streams,
              static_cast<unsigned long long>(Opts.Period),
              static_cast<unsigned long long>(StartSeq),
              static_cast<unsigned long long>(Service.persistedSequence()));
  printRecovery(Store.counters());
  printStreamTable(Snap);
  if (!Committed) {
    std::fprintf(stderr,
                 "error: snapshot commit failed (journal still holds the "
                 "run; see counters above)\n");
    return 1;
  }
  std::printf("snapshot committed to %s\n", Opts.Dir.c_str());
  return 0;
}

// Rebuilds service state from a checkpoint directory and reports what
// the recovery ladder did -- no new work is submitted. The topology
// flags must match the run that produced the directory, or the snapshot
// is (safely) rejected and recovery degrades to journal replay.
int cmdRestore(const Options &Opts) {
  if (Opts.Streams == 0 || Opts.Workers == 0 || Opts.QueueCapacity == 0) {
    std::fprintf(stderr,
                 "error: --streams, --workers and --queue must be > 0\n");
    return 2;
  }
  if (Opts.Dir.empty()) {
    std::fprintf(stderr, "error: restore needs --dir PATH\n");
    return 2;
  }
  const std::vector<Stream> Streams = makeStreams(Opts);

  persist::CheckpointManager Store(Opts.Dir);
  service::MonitorService Service(
      {Opts.Workers, Opts.QueueCapacity, Opts.Policy,
       /*ValidateBatches=*/true, {}});
  for (const Stream &S : Streams)
    Service.addStream(*S.Map);
  Service.attachPersistence(Store);
  const service::RestoreOutcome Outcome = Service.restore();

  const service::ServiceSnapshot Snap = Service.snapshot();
  std::printf("%s: %s (sequence %llu)\n", Opts.Dir.c_str(),
              service::toString(Outcome),
              static_cast<unsigned long long>(Service.persistedSequence()));
  printRecovery(Store.counters());
  std::printf("  aggregate: %llu batches, %llu intervals, %llu phase "
              "changes, UCR %.1f%%\n",
              static_cast<unsigned long long>(Snap.BatchesSubmitted),
              static_cast<unsigned long long>(Snap.IntervalsProcessed),
              static_cast<unsigned long long>(Snap.PhaseChanges),
              Snap.ucrFraction() * 100.0);
  printStreamTable(Snap);
  return 0;
}

// Shared by stats/trace: one deterministic single-threaded run of region
// monitoring (LPD) plus the centroid baseline (GPD) over the workload,
// with the full instrument catalogue attached. Single-threaded on
// purpose: the event arrival order -- and therefore the exported bytes
// -- is a pure function of (workload, period, seed).
void runObserved(const Options &Opts, obs::MetricsRegistry &Registry,
                 obs::EventTracer &Tracer) {
  const workloads::Workload W = workloads::make(Opts.Workload);
  sim::Engine Engine(W.Prog, W.Script, Opts.Seed);
  sampling::Sampler Sampler(Engine, {Opts.Period, 2032});
  sim::ProgramCodeMap Map(W.Prog);

  core::RegionMonitorConfig Config;
  Config.Similarity = Opts.Similarity;
  Config.Attribution = Opts.Attribution;
  Config.Lpd.AdaptiveThreshold = Opts.AdaptiveRt;
  Config.TrackMissPhases = Opts.MissPhases;
  if (Opts.PruneAfter) {
    Config.PruneColdRegions = true;
    Config.PruneAfterIdleIntervals = *Opts.PruneAfter;
  }
  core::RegionMonitor Monitor(Map, Config);
  const obs::MonitorInstruments MonObs =
      obs::makeMonitorInstruments(Registry, &Tracer, 0, "");
  Monitor.attachObservability(&MonObs);

  gpd::CentroidPhaseDetector Gpd;
  const obs::GpdInstruments GpdObs =
      obs::makeGpdInstruments(Registry, &Tracer, 0, "");
  Gpd.attachObservability(&GpdObs);

  Sampler.run([&](std::span<const Sample> Buffer) {
    Monitor.observeInterval(Buffer);
    Gpd.observeInterval(Buffer);
  });
}

int cmdStats(const Options &Opts) {
  obs::MetricsRegistry Registry;
  obs::EventTracer Tracer;
  runObserved(Opts, Registry, Tracer);
  if (Opts.Format == "json")
    std::printf("%s\n", obs::exportJson(Registry, &Tracer).c_str());
  else
    std::printf("%s", obs::exportPrometheus(Registry).c_str());
  return 0;
}

int cmdTrace(const Options &Opts) {
  obs::MetricsRegistry Registry;
  obs::EventTracer Tracer;
  runObserved(Opts, Registry, Tracer);
  std::printf("%s", obs::exportTraceText(Tracer).c_str());
  return 0;
}

// A deterministic fleet run: N leaf services under an aggregation tree,
// with optional crash/stall/transport faults injected from the seed.
// The same flags always print the same bytes -- faults included.
int cmdFleet(const Options &Opts) {
  if (Opts.Leaves == 0 || Opts.StreamsPerLeaf == 0 || Opts.Epochs == 0) {
    std::fprintf(stderr,
                 "error: --leaves, --streams-per-leaf and --epochs "
                 "must be > 0\n");
    return 2;
  }
  fleet::FleetSimConfig Cfg;
  Cfg.Leaves = Opts.Leaves;
  Cfg.Fanout = Opts.Fanout;
  Cfg.StreamsPerLeaf = Opts.StreamsPerLeaf;
  Cfg.Workload = Opts.Workload;
  Cfg.PeriodCycles = Opts.Period;
  Cfg.Seed = Opts.Seed;
  Cfg.PersistDir = Opts.Dir;

  fleet::FleetFaultConfig Faults;
  Faults.LeafCrashRate = Opts.CrashRate;
  Faults.AggStallRate = Opts.StallRate;
  Faults.Transport = {Opts.DropRate, Opts.DupRate, Opts.ReorderRate,
                      Opts.StaleRate};
  Faults.MaxStalenessEpochs = Opts.Staleness;

  fleet::FleetSim Sim(Cfg, fleet::FleetFaultPlan(Opts.Seed, Faults));
  Sim.run(Opts.Epochs);

  if (!Opts.Metrics.empty()) {
    obs::MetricsRegistry Registry;
    const obs::FleetInstruments Inst = obs::makeFleetInstruments(
        Registry, fleet::stableFractionBounds(), "");
    fleet::publishFleetMetrics(Sim, Inst);
    if (Opts.Metrics == "json")
      std::printf("%s\n", obs::exportJson(Registry, nullptr).c_str());
    else
      std::printf("%s", obs::exportPrometheus(Registry).c_str());
    return 0;
  }

  const fleet::FleetTopology &Topo = Sim.topology();
  std::printf("%s x %u leaves x %u stream(s), fanout %u "
              "(%zu aggregator(s), %u level(s))\n",
              Opts.Workload.c_str(), Topo.leaves(), Opts.StreamsPerLeaf,
              Topo.fanout(), Topo.aggs().size(), Topo.levels());
  std::uint64_t Crashes = 0, Discarded = 0;
  for (std::uint32_t L = 0; L < Topo.leaves(); ++L) {
    Crashes += Sim.leafStats(L).Crashes;
    Discarded += Sim.leafStats(L).BatchesDiscarded;
  }
  std::uint64_t Sent = 0, Delivered = 0, Resyncs = 0;
  const std::uint32_t NumLinks =
      Topo.leaves() + static_cast<std::uint32_t>(Topo.aggs().size());
  for (std::uint32_t I = 0; I < NumLinks; ++I) {
    Sent += Sim.linkStats(I).Sent;
    Delivered += Sim.linkStats(I).Delivered;
  }
  for (const auto &N : Topo.aggs())
    Resyncs += Sim.aggStats(N.Id).ResyncSuccesses;
  std::printf("  faults: %llu leaf crash(es), %llu batch(es) lost to "
              "downtime; links %llu sent / %llu delivered; "
              "%llu re-sync(s)\n",
              static_cast<unsigned long long>(Crashes),
              static_cast<unsigned long long>(Discarded),
              static_cast<unsigned long long>(Sent),
              static_cast<unsigned long long>(Delivered),
              static_cast<unsigned long long>(Resyncs));
  std::printf("%s", Sim.view().render().c_str());
  return 0;
}

// serve under an attached flight recorder, with seeded stream faults
// injected so the captured incident exercises the health machine and (with
// --policy drop) the eviction path. --crash-bytes kills the *recorder* --
// not the service -- after the given I/O budget, leaving the torn trace a
// later trace-verify/replay repairs; the service finishes the run either
// way. --dir attaches durability and commits a snapshot at the end, which
// the trace captures as a checkpoint marker.
int cmdRecord(const Options &Opts) {
  if (Opts.Streams == 0 || Opts.Workers == 0 || Opts.QueueCapacity == 0) {
    std::fprintf(stderr,
                 "error: --streams, --workers and --queue must be > 0\n");
    return 2;
  }
  if (Opts.Trace.empty()) {
    std::fprintf(stderr, "error: record needs --trace PATH\n");
    return 2;
  }
  const std::vector<Stream> Streams = makeStreams(Opts);
  service::MonitorService Service(
      {Opts.Workers, Opts.QueueCapacity, Opts.Policy,
       /*ValidateBatches=*/true, {}});
  for (const Stream &S : Streams)
    Service.addStream(*S.Map);
  obs::MetricsRegistry Registry;
  obs::EventTracer Tracer;
  Service.attachObservability(Registry, &Tracer);
  std::unique_ptr<persist::CheckpointManager> Store;
  if (!Opts.Dir.empty()) {
    Store = std::make_unique<persist::CheckpointManager>(Opts.Dir);
    Service.attachPersistence(*Store);
    std::printf("restored from %s: %s (sequence %llu)\n", Opts.Dir.c_str(),
                service::toString(Service.restore()),
                static_cast<unsigned long long>(Service.persistedSequence()));
  }
  persist::CrashPoint Crash = Opts.CrashBytes > 0
                                  ? persist::CrashPoint(Opts.CrashBytes)
                                  : persist::CrashPoint::unlimited();
  trace::TraceRecorder Recorder;
  const trace::TraceRecorder::OpenResult Open =
      Recorder.open(Opts.Trace, &Crash);
  if (!Open.Ok) {
    std::fprintf(stderr,
                 "error: cannot record to '%s' (not a regmon trace, or the "
                 "crash budget died before the header)\n",
                 Opts.Trace.c_str());
    return 1;
  }
  Service.attachRecorder(Recorder);
  Service.start();

  faults::FaultConfig FaultCfg;
  FaultCfg.DropRate = Opts.DropRate;
  FaultCfg.CorruptRate = Opts.CorruptRate;
  FaultCfg.TruncateRate = Opts.TruncateRate;
  FaultCfg.PoisonRate = Opts.PoisonRate;
  const faults::FaultPlan Plan(Opts.Seed, FaultCfg);

  std::vector<std::thread> Producers;
  Producers.reserve(Streams.size());
  for (service::StreamId Id = 0; Id < Streams.size(); ++Id)
    Producers.emplace_back([&, Id] {
      const Stream &S = Streams[Id];
      sim::Engine Engine(S.W->Prog, S.W->Script, Opts.Seed + Id);
      sampling::Sampler Sampler(Engine, {Opts.Period, 2032});
      faults::StreamFaultInjector Inj = Plan.forStream(Id);
      std::vector<Sample> Buffer;
      std::size_t Sent = 0;
      while (Sent < Opts.MaxIntervals && Sampler.fillBuffer(Buffer)) {
        std::vector<Sample> Faulted = Inj.apply(Buffer);
        if (Inj.nextBatchFault() == faults::BatchFault::Poison)
          faults::poisonBatch(Faulted);
        // A false return here is a health refusal (poison/quarantine),
        // which the recorder captured -- keep producing through it.
        (void)Service.submit({Id, std::move(Faulted)});
        ++Sent;
      }
    });
  for (std::thread &T : Producers)
    T.join();
  Service.stop();
  bool Committed = true;
  if (Store)
    Committed = Service.checkpoint();
  const bool RecorderDied = !Recorder.ok();
  Recorder.close();

  const service::ServiceSnapshot Snap = Service.snapshot();
  std::printf("%s x %zu streams @ %llu cycles/interrupt "
              "(%zu workers, queue %zu, policy %s)\n",
              Opts.Workload.c_str(), Opts.Streams,
              static_cast<unsigned long long>(Opts.Period), Opts.Workers,
              Opts.QueueCapacity, service::toString(Opts.Policy));
  std::printf("  batches: %llu submitted, %llu processed, %llu dropped, "
              "%llu rejected, %llu poisoned, %llu quarantined\n",
              static_cast<unsigned long long>(Snap.BatchesSubmitted),
              static_cast<unsigned long long>(Snap.BatchesProcessed),
              static_cast<unsigned long long>(Snap.BatchesDropped),
              static_cast<unsigned long long>(Snap.BatchesRejected),
              static_cast<unsigned long long>(Snap.BatchesPoisoned),
              static_cast<unsigned long long>(Snap.BatchesQuarantined));
  std::printf("  trace: %s%s, %llu record(s) (%llu bytes), %llu append "
              "failure(s), next seq %llu\n",
              Opts.Trace.c_str(), Open.Repaired ? " (tail repaired)" : "",
              static_cast<unsigned long long>(Recorder.recordsWritten()),
              static_cast<unsigned long long>(Recorder.bytesWritten()),
              static_cast<unsigned long long>(Recorder.appendFailures()),
              static_cast<unsigned long long>(Recorder.nextSequence()));
  if (RecorderDied)
    std::printf("  recorder died mid-run (crash budget or I/O error); the "
                "surviving prefix is replayable after trace-verify "
                "--repair\n");
  if (!Opts.Export.empty()) {
    const std::string Text = Opts.Format == "json"
                                 ? obs::exportJson(Registry, &Tracer) + "\n"
                                 : obs::exportPrometheus(Registry);
    std::FILE *F = std::fopen(Opts.Export.c_str(), "wb");
    bool Written =
        F && std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
    if (F)
      Written = std::fclose(F) == 0 && Written;
    if (!Written) {
      std::fprintf(stderr, "error: cannot write export to '%s'\n",
                   Opts.Export.c_str());
      return 1;
    }
    std::printf("  export: %s (%s)\n", Opts.Export.c_str(),
                Opts.Format.c_str());
  }
  if (Store && !Committed) {
    std::fprintf(stderr, "error: snapshot commit failed\n");
    return 1;
  }
  return 0;
}

// Re-drives a recorded trace through a fresh worker-less service built
// with the same topology flags (and the same workload, for the code maps)
// as the recording run, then prints the obs export on stdout -- which is
// byte-identical to the recording run's --export file when the trace is
// whole. A damaged trace replays its repaired/valid prefix.
int cmdReplay(const Options &Opts) {
  if (Opts.Streams == 0 || Opts.Workers == 0 || Opts.QueueCapacity == 0) {
    std::fprintf(stderr,
                 "error: --streams, --workers and --queue must be > 0\n");
    return 2;
  }
  if (Opts.Trace.empty()) {
    std::fprintf(stderr, "error: replay needs --trace PATH\n");
    return 2;
  }
  const std::vector<Stream> Streams = makeStreams(Opts);
  service::ServiceConfig Cfg{Opts.Workers, Opts.QueueCapacity, Opts.Policy,
                             /*ValidateBatches=*/true, {}};
  Cfg.Inline = true;
  service::MonitorService Service(Cfg);
  for (const Stream &S : Streams)
    Service.addStream(*S.Map);
  obs::MetricsRegistry Registry;
  obs::EventTracer Tracer;
  Service.attachObservability(Registry, &Tracer);
  std::unique_ptr<persist::CheckpointManager> Store;
  trace::ReplayConfig RCfg;
  if (!Opts.Dir.empty()) {
    Store = std::make_unique<persist::CheckpointManager>(Opts.Dir);
    Service.attachPersistence(*Store);
    (void)Service.restore();
    RCfg.ApplyCheckpoints = true;
  }
  const trace::FileReplay R = trace::replayTraceFile(Opts.Trace, Service, RCfg);
  if (R.Scan.Missing) {
    std::fprintf(stderr, "error: no trace at '%s'\n", Opts.Trace.c_str());
    return 1;
  }
  if (!R.Scan.intact() && !R.Scan.repairable()) {
    std::fprintf(stderr,
                 "error: '%s' is not a regmon trace this build can read "
                 "(wrong magic, future version, or unknown record kind)\n",
                 Opts.Trace.c_str());
    return 1;
  }
  if (!R.Scan.intact())
    std::fprintf(stderr,
                 "note: damaged tail; replaying the %llu-byte valid prefix "
                 "(%zu record(s))\n",
                 static_cast<unsigned long long>(R.Scan.ValidBytes),
                 R.Scan.Records.size());
  if (R.Replay.ConfigMismatch) {
    std::fprintf(stderr,
                 "error: trace was recorded under a different configuration "
                 "(check --streams/--workers/--queue/--policy)\n");
    return 1;
  }
  if (R.Replay.Diverged) {
    std::fprintf(stderr, "error: replay diverged at record %llu\n",
                 static_cast<unsigned long long>(R.Replay.DivergedSeq));
    return 1;
  }
  // Refresh the point-in-time gauges (queue depth, quarantined streams)
  // exactly as the recording run's final snapshot did, so the exported
  // bytes line up.
  (void)Service.snapshot();
  if (Opts.Format == "json")
    std::printf("%s\n", obs::exportJson(Registry, &Tracer).c_str());
  else
    std::printf("%s", obs::exportPrometheus(Registry).c_str());
  std::fprintf(stderr,
               "replayed %llu batch(es), %llu drop(s), %llu push "
               "reject(s), %llu checkpoint(s) (%llu re-applied)\n",
               static_cast<unsigned long long>(R.Replay.BatchesApplied),
               static_cast<unsigned long long>(R.Replay.DropsApplied),
               static_cast<unsigned long long>(R.Replay.PushRejectsApplied),
               static_cast<unsigned long long>(R.Replay.CheckpointsSeen),
               static_cast<unsigned long long>(R.Replay.CheckpointsApplied));
  return 0;
}

// Scans a trace and reports its health. Exit 0 when the file is intact
// (or was repaired here under --repair), 1 when damaged, 2 on usage
// errors -- scriptable as a post-crash triage step before replay.
int cmdTraceVerify(const Options &Opts) {
  if (Opts.Trace.empty()) {
    std::fprintf(stderr, "error: trace-verify needs --trace PATH\n");
    return 2;
  }
  const trace::ScanResult Scan = trace::scanTraceFile(Opts.Trace);
  if (Scan.Missing) {
    std::fprintf(stderr, "error: no trace at '%s'\n", Opts.Trace.c_str());
    return 1;
  }
  std::printf("%s: %llu / %llu bytes valid, %zu record(s), last seq %llu\n",
              Opts.Trace.c_str(),
              static_cast<unsigned long long>(Scan.ValidBytes),
              static_cast<unsigned long long>(Scan.FileBytes),
              Scan.Records.size(),
              static_cast<unsigned long long>(Scan.LastSeq));
  if (Scan.intact()) {
    std::printf("  intact\n");
    return 0;
  }
  std::printf("  damage:%s%s%s%s%s%s\n", Scan.TornTail ? " torn-tail" : "",
              Scan.MalformedPayload ? " malformed-payload" : "",
              Scan.UnknownKind ? " unknown-kind" : "",
              Scan.HeaderTorn ? " header-torn" : "",
              Scan.HeaderCorrupt ? " header-corrupt" : "",
              Scan.VersionSkew ? " version-skew" : "");
  if (!Scan.repairable()) {
    std::fprintf(stderr,
                 "error: not repairable (foreign or future-version data; "
                 "truncating would destroy another writer's file)\n");
    return 1;
  }
  if (!Opts.Repair) {
    std::fprintf(stderr,
                 "note: repairable; re-run with --repair to truncate to "
                 "the valid prefix\n");
    return 1;
  }
  const std::uint64_t Keep = Scan.HeaderTorn ? 0 : Scan.ValidBytes;
  if (!persist::truncateFile(Opts.Trace, Keep, nullptr)) {
    std::fprintf(stderr, "error: cannot truncate '%s'\n", Opts.Trace.c_str());
    return 1;
  }
  std::printf("  repaired: truncated to %llu byte(s)\n",
              static_cast<unsigned long long>(Keep));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  Options Opts;
  Opts.Command = Argv[1];
  if (Opts.Command == "--help" || Opts.Command == "-h" ||
      Opts.Command == "help") {
    printUsage(stdout, Argv[0]);
    return 0;
  }
  if (Opts.Command == "list")
    return cmdList();
  if (Opts.Command == "trace-verify") {
    for (int I = 2; I < Argc; ++I) {
      if (!parseFlag(Argc, Argv, I, Opts)) {
        std::fprintf(stderr, "error: unknown flag '%s'\n", Argv[I]);
        return usage(Argv[0]);
      }
    }
    return cmdTraceVerify(Opts);
  }

  // Every remaining command takes a workload argument. Validate the
  // command *first* so a typo'd command reports itself, not its operand.
  static const char *const WorkloadCommands[] = {
      "gpd",     "monitor", "rto",   "sweep", "serve",  "checkpoint",
      "restore", "stats",   "trace", "fleet", "record", "replay"};
  bool Known = false;
  for (const char *const C : WorkloadCommands)
    Known = Known || Opts.Command == C;
  if (!Known) {
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 Opts.Command.c_str());
    return usage(Argv[0]);
  }

  if (Argc < 3)
    return usage(Argv[0]);
  Opts.Workload = Argv[2];
  if (!workloads::exists(Opts.Workload)) {
    std::fprintf(stderr, "error: unknown workload '%s' (try 'list')\n",
                 Opts.Workload.c_str());
    return 2;
  }
  for (int I = 3; I < Argc; ++I) {
    if (!parseFlag(Argc, Argv, I, Opts)) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Argv[I]);
      return usage(Argv[0]);
    }
  }

  if (Opts.Command == "gpd")
    return cmdGpd(Opts);
  if (Opts.Command == "monitor")
    return cmdMonitor(Opts);
  if (Opts.Command == "rto")
    return cmdRto(Opts);
  if (Opts.Command == "sweep")
    return cmdSweep(Opts);
  if (Opts.Command == "serve")
    return cmdServe(Opts);
  if (Opts.Command == "checkpoint")
    return cmdCheckpoint(Opts);
  if (Opts.Command == "restore")
    return cmdRestore(Opts);
  if (Opts.Command == "stats")
    return cmdStats(Opts);
  if (Opts.Command == "trace")
    return cmdTrace(Opts);
  if (Opts.Command == "fleet")
    return cmdFleet(Opts);
  if (Opts.Command == "record")
    return cmdRecord(Opts);
  return cmdReplay(Opts);
}
