//===- tools/lint/CallGraph.h - Cross-TU call graph -------------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-repo call graph the purity rules run on. Built from every
/// scanned file's ParsedFile in one shot: function definitions become
/// nodes, call sites are resolved by name against a symbol table (with a
/// class-visibility heuristic for member calls and a derived-class closure
/// so virtual dispatch edges reach overrides), and direct effect sets are
/// propagated callee-to-caller to a fixed point.
///
/// Resolution is intentionally over-approximate — a member call `x.f()`
/// links to every method `f` of every class the calling file can see —
/// because the rules only ever *ban* effects: extra edges can cause a
/// false positive (which we fix by tightening the heuristic), never a
/// silently missed violation.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TOOLS_LINT_CALLGRAPH_H
#define REGMON_TOOLS_LINT_CALLGRAPH_H

#include "Effects.h"
#include "Lint.h"
#include "Parser.h"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace regmon::lint {

/// One function definition in the repo.
struct GraphNode {
  std::string Display;   ///< "Class::name" or "name"
  std::string Name;      ///< last component
  std::string ClassName; ///< "" for free functions
  std::string File;      ///< repo-relative path
  int Line = 0;
  Layer L = Layer::Other;
  bool Hot = false;  ///< REGMON_HOT (here or on a matching declaration)
  bool Pure = false; ///< REGMON_PURE (likewise)
  bool Internal = false;
  unsigned Direct = 0;     ///< effects observed in this body
  unsigned Transitive = 0; ///< Direct | union over reachable callees
  std::vector<EffectEvidence> Evidence;
  std::vector<CallSiteInfo> Calls; ///< raw call sites (kept for dumps)
  std::vector<std::size_t> Callees; ///< sorted, unique node indices
  int Unresolved = 0; ///< call sites with no repo candidate
};

class CallGraph {
public:
  /// Builds the graph over \p Files. Contexts must outlive the call (they
  /// are only read during construction).
  static CallGraph build(const std::vector<FileContext> &Files);

  const std::vector<GraphNode> &nodes() const { return Nodes; }

  /// Shortest call chain (BFS, node indices, starting at \p Root) to a
  /// node satisfying \p Pred; empty when nothing reachable matches.
  std::vector<std::size_t>
  chain(std::size_t Root,
        const std::function<bool(const GraphNode &)> &Pred) const;

  /// Renders a chain as "a -> B::b -> c" for diagnostics.
  std::string formatChain(const std::vector<std::size_t> &Path) const;

  void dumpJson(std::ostream &OS) const;
  void dumpDot(std::ostream &OS) const;

private:
  std::vector<GraphNode> Nodes;
};

/// Name + one-line description of a graph-pass rule (the logic lives in
/// runGraphRules; these feed --list-rules and the docs).
struct GraphRuleInfo {
  std::string_view Name;
  std::string_view Description;
};

/// The graph-rule registry, in stable order.
const std::vector<GraphRuleInfo> &graphRules();

/// Runs the purity/confinement rules over \p G. \p Files supplies root
/// snippets (baseline keys) and inline `allow()` suppression; results are
/// ordered by (path, line, rule). Implemented in Rules.cpp.
std::vector<Diagnostic> runGraphRules(const CallGraph &G,
                                      const std::vector<FileContext> &Files);

/// Long-form text for `--explain <rule>`: the contract, why it exists and
/// how to fix or suppress findings. Falls back to the one-line description
/// for per-file rules; empty for unknown names.
std::string ruleExplanation(std::string_view RuleName);

} // namespace regmon::lint

#endif // REGMON_TOOLS_LINT_CALLGRAPH_H
