//===- tools/lint/Effects.h - Per-function effect extraction ----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The effect lattice of the call-graph purity pass. Each function body is
/// scanned once for *direct* facts — does it allocate, touch a wall clock
/// or libc randomness, use a concurrency primitive, perform I/O, write
/// file-scope mutable state, or make an indirect (`p->f()`) call — plus
/// the call sites that link it into the graph. CallGraph.cpp then unions
/// the facts over the graph to a fixed point, so every function carries a
/// computed transitive effect set (the join of everything it can reach).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TOOLS_LINT_EFFECTS_H
#define REGMON_TOOLS_LINT_EFFECTS_H

#include "Lint.h"
#include "Parser.h"

#include <set>
#include <string>
#include <vector>

namespace regmon::lint {

/// Effect bits. The lattice is the powerset ordered by inclusion; the
/// propagation join is bitwise OR.
enum : unsigned {
  EffAlloc = 1u << 0,       ///< heap allocation or container growth
  EffNondet = 1u << 1,      ///< wall clock, libc rand, random_device
  EffConcurrency = 1u << 2, ///< std::thread/mutex/atomic and friends
  EffIo = 1u << 3,          ///< FILE*/fstream/stdio traffic
  EffGlobalWrite = 1u << 4, ///< write to file-scope mutable state
  EffIndirect = 1u << 5,    ///< indirect member call (p->f(), p != this)
};

/// Stable short name for one effect bit ("alloc", "nondet", ...).
const char *effectName(unsigned Bit);

/// Comma-joined effectName list for a mask; "" for an empty mask.
std::string effectList(unsigned Mask);

/// Where a direct effect was observed, for call-chain diagnostics.
struct EffectEvidence {
  unsigned Bit = 0;
  int Line = 0;
  std::string Detail; ///< e.g. "operator new", "std::chrono::...::now()"
};

/// One call site inside a function body, as the resolver consumes it.
struct CallSiteInfo {
  std::string Name;      ///< callee's last name component
  std::string Qualifier; ///< innermost explicit qualifier ("" when none)
  bool StdQualified = false;
  bool Member = false; ///< written `x.name(...)` or `x->name(...)`
  bool Arrow = false;  ///< written `x->name(...)`
  bool ThisCall = false;
  int Line = 0;
};

/// Direct facts of one function body.
struct FunctionFacts {
  unsigned Direct = 0;
  std::vector<EffectEvidence> Evidence;
  std::vector<CallSiteInfo> Calls;
};

/// Scans \p F's body tokens in \p FC. \p MutableGlobals is the file's
/// namespace-scope mutable variable set (from the Parser) — writes to
/// those names become EffGlobalWrite.
FunctionFacts extractFacts(const FileContext &FC, const ParsedFunction &F,
                           const std::set<std::string> &MutableGlobals);

} // namespace regmon::lint

#endif // REGMON_TOOLS_LINT_EFFECTS_H
