//===- tools/lint/Effects.cpp - Per-function effect extraction ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Effects.h"

#include "TokenUtil.h"

using namespace regmon::lint;

namespace regmon::lint {

const char *effectName(unsigned Bit) {
  switch (Bit) {
  case EffAlloc:
    return "alloc";
  case EffNondet:
    return "nondet";
  case EffConcurrency:
    return "concurrency";
  case EffIo:
    return "io";
  case EffGlobalWrite:
    return "global-write";
  case EffIndirect:
    return "indirect-call";
  }
  return "?";
}

std::string effectList(unsigned Mask) {
  std::string S;
  for (unsigned Bit : {EffAlloc, EffNondet, EffConcurrency, EffIo,
                       EffGlobalWrite, EffIndirect})
    if (Mask & Bit) {
      if (!S.empty())
        S += ",";
      S += effectName(Bit);
    }
  return S;
}

} // namespace regmon::lint

namespace {

bool isCallKeyword(const std::string &S) {
  return oneOf(S, {"if", "for", "while", "switch", "catch", "return",
                   "co_return", "sizeof", "alignof", "noexcept", "decltype",
                   "assert", "static_assert", "throw", "new", "delete",
                   "defined", "alignas", "typeid"});
}

} // namespace

FunctionFacts regmon::lint::extractFacts(
    const FileContext &FC, const ParsedFunction &F,
    const std::set<std::string> &MutableGlobals) {
  FunctionFacts Facts;
  const std::vector<Token> &T = FC.Tokens;
  auto addEffect = [&](unsigned Bit, int Line, std::string Detail) {
    Facts.Direct |= Bit;
    Facts.Evidence.push_back(EffectEvidence{Bit, Line, std::move(Detail)});
  };
  const std::size_t End = F.BodyEnd < T.size() ? F.BodyEnd : T.size();
  for (std::size_t I = F.BodyBegin; I < End; ++I) {
    if (T[I].Kind != TokenKind::Identifier)
      continue;
    const std::string &Name = T[I].Text;
    const bool Member =
        I > 0 && (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->"));
    const bool Arrow = I > 0 && isPunct(T[I - 1], "->");
    const bool ThisCall = Arrow && I >= 2 && isId(T[I - 2], "this");
    const bool Call = nextIs(T, I, "(");

    // Allocation.
    if (Name == "new" && isStdOrUnqualified(T, I)) {
      addEffect(EffAlloc, T[I].Line, "operator new");
      continue;
    }
    if (Call && isStdOrUnqualified(T, I) && looksLikeCall(T, I) &&
        oneOf(Name, {"malloc", "calloc", "realloc", "aligned_alloc"})) {
      addEffect(EffAlloc, T[I].Line, Name + "()");
      continue;
    }
    if (isStdOrUnqualified(T, I) &&
        oneOf(Name, {"make_unique", "make_shared"})) {
      addEffect(EffAlloc, T[I].Line, "std::" + Name);
      continue;
    }
    if (Call && Member &&
        oneOf(Name, {"push_back", "emplace_back", "emplace", "resize",
                     "reserve", "insert"}))
      // Container growth; falls through — the name is also a call site in
      // case it resolves to a repo method of the same name.
      addEffect(EffAlloc, T[I].Line, "container growth ." + Name + "()");

    // Nondeterminism: the same sources NondeterminismRule flags per-file.
    if (Call && isStdOrUnqualified(T, I) && looksLikeCall(T, I) &&
        oneOf(Name,
              {"rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"}))
      addEffect(EffNondet, T[I].Line, Name + "()");
    else if (Call && isStdOrUnqualified(T, I) && looksLikeCall(T, I) &&
             oneOf(Name, {"time", "clock", "gettimeofday", "clock_gettime",
                          "localtime", "gmtime", "mktime", "ctime"}))
      addEffect(EffNondet, T[I].Line, Name + "()");
    else if (oneOf(Name, {"steady_clock", "system_clock",
                          "high_resolution_clock", "file_clock",
                          "utc_clock"}) &&
             I + 2 < T.size() && isPunct(T[I + 1], "::") &&
             isId(T[I + 2], "now"))
      addEffect(EffNondet, T[I].Line, "std::chrono::" + Name + "::now()");
    else if (Name == "random_device" && isStdOrUnqualified(T, I))
      addEffect(EffNondet, T[I].Line, "std::random_device");

    // Concurrency primitives (std-qualified, like ConcurrencyRule).
    if (isStdQualified(T, I) &&
        oneOf(Name,
              {"thread", "jthread", "mutex", "recursive_mutex",
               "timed_mutex", "shared_mutex", "condition_variable",
               "condition_variable_any", "atomic", "atomic_flag",
               "atomic_ref", "future", "promise", "async", "lock_guard",
               "unique_lock", "scoped_lock", "shared_lock", "latch",
               "barrier", "counting_semaphore", "binary_semaphore"}))
      addEffect(EffConcurrency, T[I].Line, "std::" + Name);

    // I/O.
    if (Call && isStdOrUnqualified(T, I) && looksLikeCall(T, I) &&
        oneOf(Name, {"fopen", "fclose", "fwrite", "fread", "fprintf",
                     "printf", "fputs", "puts", "fgets", "fscanf", "scanf",
                     "fflush", "fseek", "ftell", "remove", "rename",
                     "getenv", "system"}))
      addEffect(EffIo, T[I].Line, Name + "()");
    else if (isStdQualified(T, I) &&
             oneOf(Name, {"cout", "cerr", "cin", "clog", "ofstream",
                          "ifstream", "fstream", "filesystem"}))
      addEffect(EffIo, T[I].Line, "std::" + Name);

    // Writes to this file's namespace-scope mutable variables.
    if (!Member && MutableGlobals.count(Name) != 0 &&
        (I == 0 || !isPunct(T[I - 1], "::"))) {
      bool Write =
          (I + 1 < T.size() && T[I + 1].Kind == TokenKind::Punct &&
           oneOf(T[I + 1].Text, {"=", "+=", "-=", "*=", "/=", "%=", "&=",
                                 "|=", "^=", "<<=", ">>=", "++", "--"})) ||
          (I > 0 && (isPunct(T[I - 1], "++") || isPunct(T[I - 1], "--")));
      if (Write)
        addEffect(EffGlobalWrite, T[I].Line,
                  "write to file-scope '" + Name + "'");
    }

    // Indirect calls and the call-site list for the resolver.
    if (Call && !isCallKeyword(Name)) {
      if (Arrow && !ThisCall)
        addEffect(EffIndirect, T[I].Line, "->" + Name + "()");
      CallSiteInfo CS;
      CS.Name = Name;
      CS.Member = Member;
      CS.Arrow = Arrow;
      CS.ThisCall = ThisCall;
      CS.Line = T[I].Line;
      if (!Member && I >= 2 && isPunct(T[I - 1], "::") &&
          T[I - 2].Kind == TokenKind::Identifier) {
        CS.Qualifier = T[I - 2].Text;
        std::size_t Q = I - 2;
        while (Q >= 2 && isPunct(T[Q - 1], "::") &&
               T[Q - 2].Kind == TokenKind::Identifier)
          Q -= 2;
        CS.StdQualified = T[Q].Text == "std";
      }
      Facts.Calls.push_back(std::move(CS));
    }
  }
  return Facts;
}
