//===- tools/lint/Rules.cpp - regmon-lint rule implementations ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project rules. Each rule is a token-stream scan over one file; the
/// layer matrix at the top of each check() encodes where the rule applies.
/// To add a rule: implement the Rule interface, append it in allRules(),
/// give it a fixture pair in tests/lint_fixtures/, and document it in
/// DESIGN.md §8.
///
//===----------------------------------------------------------------------===//

#include "Lint.h"

#include "CallGraph.h"
#include "Effects.h"
#include "TokenUtil.h"

#include <algorithm>
#include <functional>

namespace regmon::lint {

namespace {

void addDiag(const FileContext &FC, std::vector<Diagnostic> &Out,
             std::string_view RuleName, int Line, std::string Message) {
  Out.push_back(Diagnostic{std::string(RuleName), FC.Path, Line,
                           std::move(Message),
                           normalizeLine(FC.line(Line)), false});
}

//===----------------------------------------------------------------------===//
// R1: nondeterminism — wall clocks and libc randomness are banned in the
// layers whose outputs must replay bit-identically.
//===----------------------------------------------------------------------===//

class NondeterminismRule final : public Rule {
public:
  std::string_view name() const override { return "nondeterminism"; }
  std::string_view description() const override {
    return "bans std::rand/time()/clock-now and std::random_device in the "
           "deterministic layers (src/core, src/sim, src/gpd, src/sampling); "
           "randomness must come from support/Rng";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    bool Deterministic = FC.L == Layer::Deterministic;
    // random_device is additionally banned in every non-test production
    // layer except support/Rng itself: a seed drawn from it anywhere
    // upstream destroys replayability of whole experiments.
    bool RdBanned = (Deterministic || FC.L == Layer::Support ||
                     FC.L == Layer::Service || FC.L == Layer::Obs ||
                     FC.L == Layer::Tools) &&
                    FC.Path.find("support/Rng") == std::string::npos;
    if (!Deterministic && !RdBanned)
      return;
    const std::vector<Token> &T = FC.Tokens;
    for (std::size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind != TokenKind::Identifier)
        continue;
      const std::string &Name = T[I].Text;
      if (RdBanned && Name == "random_device" &&
          isStdOrUnqualified(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                "std::random_device breaks replay determinism; seed a "
                "regmon::Rng (support/Rng.h) explicitly instead");
        continue;
      }
      if (!Deterministic)
        continue;
      if (oneOf(Name, {"rand", "srand", "rand_r", "drand48", "lrand48",
                       "mrand48"}) &&
          nextIs(T, I, "(") && isStdOrUnqualified(T, I) &&
          looksLikeCall(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                "libc randomness (" + Name +
                    ") is nondeterministic across platforms; use "
                    "regmon::Rng from support/Rng.h");
        continue;
      }
      if (oneOf(Name, {"time", "clock", "gettimeofday", "clock_gettime",
                       "localtime", "gmtime", "mktime", "ctime"}) &&
          nextIs(T, I, "(") && isStdOrUnqualified(T, I) &&
          looksLikeCall(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                "wall-clock call (" + Name +
                    ") in a deterministic layer; thread simulated time "
                    "through explicitly");
        continue;
      }
      if (oneOf(Name, {"steady_clock", "system_clock",
                       "high_resolution_clock", "file_clock", "utc_clock"}) &&
          I + 2 < T.size() && isPunct(T[I + 1], "::") &&
          isId(T[I + 2], "now")) {
        addDiag(FC, Out, name(), T[I].Line,
                "std::chrono::" + Name +
                    "::now() in a deterministic layer; timing belongs in "
                    "bench/ or src/service");
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R2a: concurrency — threads, locks and atomics live in src/service only
// (tests and bench may use them freely to exercise the service).
//===----------------------------------------------------------------------===//

class ConcurrencyRule final : public Rule {
public:
  std::string_view name() const override { return "concurrency"; }
  std::string_view description() const override {
    return "confines std::thread/std::mutex/std::atomic and friends to "
           "src/service (tests and bench exempt)";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    if (FC.L != Layer::Deterministic && FC.L != Layer::Support &&
        FC.L != Layer::Tools)
      return;
    const std::vector<Token> &T = FC.Tokens;
    for (std::size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind == TokenKind::Directive) {
        for (std::string_view Header :
             {"<thread>", "<mutex>", "<shared_mutex>", "<condition_variable>",
              "<atomic>", "<future>", "<semaphore>", "<barrier>", "<latch>",
              "<stop_token>"}) {
          if (T[I].Text.find("include") != std::string::npos &&
              T[I].Text.find(Header) != std::string::npos) {
            addDiag(FC, Out, name(), T[I].Line,
                    "include of " + std::string(Header) +
                        " outside src/service; concurrency is confined to "
                        "the service layer");
            break;
          }
        }
        continue;
      }
      if (T[I].Kind != TokenKind::Identifier || !isStdQualified(T, I))
        continue;
      if (oneOf(T[I].Text,
                {"thread", "jthread", "mutex", "recursive_mutex",
                 "timed_mutex", "shared_mutex", "condition_variable",
                 "condition_variable_any", "atomic", "atomic_flag",
                 "atomic_ref", "future", "promise", "async", "lock_guard",
                 "unique_lock", "scoped_lock", "shared_lock", "latch",
                 "barrier", "counting_semaphore", "binary_semaphore"})) {
        addDiag(FC, Out, name(), T[I].Line,
                "std::" + T[I].Text +
                    " outside src/service; move the concurrency into the "
                    "service layer or mark an explicit exception");
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R2b: memory-order — every atomic access spells out its ordering. The
// service's snapshot-consistency argument (DESIGN.md §7) is written in
// terms of explicit acquire/release pairs; a defaulted seq_cst access is
// almost always an unreviewed one.
//===----------------------------------------------------------------------===//

class MemoryOrderRule final : public Rule {
public:
  std::string_view name() const override { return "memory-order"; }
  std::string_view description() const override {
    return "requires an explicit std::memory_order argument on every "
           "atomic load/store/exchange/fetch_* call";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    const std::vector<Token> &T = FC.Tokens;
    for (std::size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind != TokenKind::Identifier ||
          !oneOf(T[I].Text,
                 {"load", "store", "exchange", "fetch_add", "fetch_sub",
                  "fetch_and", "fetch_or", "fetch_xor",
                  "compare_exchange_weak", "compare_exchange_strong"}))
        continue;
      // Only member calls: `x.load(...)` / `p->fetch_add(...)`.
      if (I == 0 || !(isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")))
        continue;
      if (!nextIs(T, I, "("))
        continue;
      std::size_t End = skipBalanced(T, I + 1, "(", ")");
      bool HasOrder = false;
      for (std::size_t J = I + 2; J + 1 < End; ++J)
        if (T[J].Kind == TokenKind::Identifier &&
            T[J].Text.find("memory_order") != std::string::npos) {
          HasOrder = true;
          break;
        }
      if (!HasOrder)
        addDiag(FC, Out, name(), T[I].Line,
                "atomic ." + T[I].Text +
                    "() without an explicit std::memory_order; defaulted "
                    "seq_cst hides the intended synchronization contract");
    }
  }
};

//===----------------------------------------------------------------------===//
// R3: iteration-order — range-for over an unordered container whose body
// appends to a result vector or stream makes output depend on hash-table
// layout, which varies across libstdc++ versions and ASLR.
//===----------------------------------------------------------------------===//

class IterationOrderRule final : public Rule {
public:
  std::string_view name() const override { return "iteration-order"; }
  std::string_view description() const override {
    return "flags range-for loops over unordered containers whose bodies "
           "append to result vectors or streams";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    if (FC.L == Layer::Bench || FC.L == Layer::Tests)
      return;
    const std::vector<Token> &T = FC.Tokens;
    // Pass 1: names declared with an unordered container type.
    std::set<std::string> UnorderedVars;
    for (std::size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind != TokenKind::Identifier ||
          !oneOf(T[I].Text, {"unordered_map", "unordered_set",
                             "unordered_multimap", "unordered_multiset"}))
        continue;
      if (!nextIs(T, I, "<"))
        continue;
      std::size_t J = skipBalanced(T, I + 1, "<", ">");
      while (J < T.size() &&
             (isPunct(T[J], "&") || isPunct(T[J], "*") || isId(T[J], "const")))
        ++J;
      if (J < T.size() && T[J].Kind == TokenKind::Identifier)
        UnorderedVars.insert(T[J].Text);
    }
    // Pass 2: range-fors whose range names one of those variables (or an
    // inline unordered temporary) and whose body emits results.
    for (std::size_t I = 0; I + 1 < T.size(); ++I) {
      if (!isId(T[I], "for") || !isPunct(T[I + 1], "("))
        continue;
      std::size_t HeadEnd = skipBalanced(T, I + 1, "(", ")");
      std::size_t Colon = 0;
      int Depth = 0;
      for (std::size_t J = I + 1; J + 1 < HeadEnd; ++J) {
        if (isPunct(T[J], "(") || isPunct(T[J], "[") || isPunct(T[J], "{"))
          ++Depth;
        else if (isPunct(T[J], ")") || isPunct(T[J], "]") ||
                 isPunct(T[J], "}"))
          --Depth;
        else if (Depth == 1 && isPunct(T[J], ":")) {
          Colon = J;
          break;
        }
      }
      if (Colon == 0)
        continue;
      bool RangeUnordered = false;
      for (std::size_t J = Colon + 1; J + 1 < HeadEnd; ++J) {
        if (T[J].Kind == TokenKind::Identifier &&
            (UnorderedVars.count(T[J].Text) != 0 ||
             oneOf(T[J].Text, {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"}))) {
          RangeUnordered = true;
          break;
        }
      }
      if (!RangeUnordered || HeadEnd >= T.size())
        continue;
      // Body: braced block or single statement.
      std::size_t BodyBegin = HeadEnd, BodyEnd;
      if (isPunct(T[BodyBegin], "{")) {
        BodyEnd = skipBalanced(T, BodyBegin, "{", "}");
      } else {
        BodyEnd = BodyBegin;
        while (BodyEnd < T.size() && !isPunct(T[BodyEnd], ";"))
          ++BodyEnd;
      }
      for (std::size_t J = BodyBegin; J < BodyEnd; ++J) {
        bool Emits =
            (T[J].Kind == TokenKind::Identifier &&
             oneOf(T[J].Text,
                   {"push_back", "emplace_back", "emplace", "append"})) ||
            isPunct(T[J], "<<");
        if (Emits) {
          addDiag(FC, Out, name(), T[I].Line,
                  "range-for over an unordered container feeds "
                  "result-bearing output; iterate a sorted copy or switch "
                  "the container to std::map/std::set");
          break;
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R4a: header-hygiene — guards and namespace leaks.
//===----------------------------------------------------------------------===//

class HeaderHygieneRule final : public Rule {
public:
  std::string_view name() const override { return "header-hygiene"; }
  std::string_view description() const override {
    return "headers need an include guard (#pragma once or "
           "#ifndef/#define) and must not contain using namespace";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    if (!FC.IsHeader)
      return;
    const std::vector<Token> &T = FC.Tokens;
    bool Guarded = false;
    std::string PendingMacro;
    for (const Token &Tok : T) {
      if (Tok.Kind != TokenKind::Directive)
        continue;
      if (Tok.Text.find("pragma once") != std::string::npos) {
        Guarded = true;
        break;
      }
      if (!PendingMacro.empty()) {
        if (Tok.Text.find("define " + PendingMacro) != std::string::npos)
          Guarded = true;
        break; // only the first #ifndef/#define pair counts
      }
      std::size_t At = Tok.Text.find("ifndef ");
      if (At != std::string::npos) {
        PendingMacro = Tok.Text.substr(At + 7);
        std::size_t Sp = PendingMacro.find(' ');
        if (Sp != std::string::npos)
          PendingMacro.resize(Sp);
      }
    }
    if (!Guarded)
      addDiag(FC, Out, name(), 1,
              "header has no include guard (#pragma once or "
              "#ifndef/#define pair)");
    for (std::size_t I = 0; I + 1 < T.size(); ++I)
      if (isId(T[I], "using") && isId(T[I + 1], "namespace"))
        addDiag(FC, Out, name(), T[I].Line,
                "using namespace in a header leaks into every includer");
  }
};

//===----------------------------------------------------------------------===//
// R4b: assert-side-effects — asserts compiled out under NDEBUG must not
// change state, or release and debug builds diverge.
//===----------------------------------------------------------------------===//

class AssertSideEffectsRule final : public Rule {
public:
  std::string_view name() const override { return "assert-side-effects"; }
  std::string_view description() const override {
    return "bans ++/--/assignment inside assert(): the expression "
           "disappears under NDEBUG";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    const std::vector<Token> &T = FC.Tokens;
    for (std::size_t I = 0; I < T.size(); ++I) {
      if (!isId(T[I], "assert") || !nextIs(T, I, "("))
        continue;
      if (I > 0 && (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->") ||
                    isPunct(T[I - 1], "::")))
        continue;
      std::size_t End = skipBalanced(T, I + 1, "(", ")");
      for (std::size_t J = I + 2; J + 1 < End; ++J) {
        if (T[J].Kind == TokenKind::Punct &&
            oneOf(T[J].Text, {"++", "--", "=", "+=", "-=", "*=", "/=", "%=",
                              "&=", "|=", "^=", "<<=", ">>="})) {
          addDiag(FC, Out, name(), T[I].Line,
                  "side effect ('" + T[J].Text +
                      "') inside assert(); the whole expression vanishes "
                      "under NDEBUG");
          break;
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R5: swallowed-exception — a catch (...) that neither rethrows nor
// propagates an error turns every failure into silent state corruption.
// The chaos suite injects faults on purpose; a handler that eats them
// would make the fault-accounting counters lie.
//===----------------------------------------------------------------------===//

class SwallowedExceptionRule final : public Rule {
public:
  std::string_view name() const override { return "swallowed-exception"; }
  std::string_view description() const override {
    return "flags catch (...) handlers in src/ that neither rethrow nor "
           "propagate an error value; silently swallowing an unknown "
           "exception hides faults";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    if (FC.L != Layer::Deterministic && FC.L != Layer::Support &&
        FC.L != Layer::Service)
      return;
    const std::vector<Token> &T = FC.Tokens;
    for (std::size_t I = 0; I + 2 < T.size(); ++I) {
      if (!isId(T[I], "catch") || !nextIs(T, I, "("))
        continue;
      std::size_t HeadEnd = skipBalanced(T, I + 1, "(", ")");
      // Only catch (...): a typed handler names the error it claims to
      // understand; the catch-all by construction does not.
      bool Ellipsis = false;
      for (std::size_t J = I + 2; J + 1 < HeadEnd; ++J)
        if (isPunct(T[J], "...")) {
          Ellipsis = true;
          break;
        }
      if (!Ellipsis || HeadEnd >= T.size() || !isPunct(T[HeadEnd], "{"))
        continue;
      std::size_t BodyEnd = skipBalanced(T, HeadEnd, "{", "}");
      bool Handles = false;
      for (std::size_t J = HeadEnd + 1; J + 1 < BodyEnd && !Handles; ++J) {
        if (T[J].Kind != TokenKind::Identifier)
          continue;
        if (oneOf(T[J].Text, {"throw", "rethrow_exception", "terminate",
                              "abort", "exit", "_Exit", "quick_exit",
                              "current_exception"}))
          Handles = true; // rethrown, latched, or fatal
        else if (T[J].Text == "return" && J + 1 < BodyEnd &&
                 !isPunct(T[J + 1], ";"))
          Handles = true; // propagates an error value to the caller
      }
      if (!Handles)
        addDiag(FC, Out, name(), T[I].Line,
                "catch (...) swallows the exception; rethrow, propagate an "
                "error value, or terminate -- silent absorption turns "
                "failures into state corruption");
    }
  }
};

//===----------------------------------------------------------------------===//
// R6: persist-serialization — src/persist and src/trace write bytes that
// outlive the process and must be readable by a differently built binary.
// Two classes of portability bugs are banned mechanically: platform-width
// integer types anywhere in the layer (a size_t field silently changes the
// wire layout between 32- and 64-bit builds), and dropped fwrite/fread
// return values (a short transfer is exactly how torn files announce
// themselves; ignoring it converts detectable corruption into silent
// corruption). src/trace joined the rule with the flight recorder: its
// record encoding is a wire format with the same portability contract as
// the journal's.
//===----------------------------------------------------------------------===//

class PersistSerializationRule final : public Rule {
public:
  std::string_view name() const override { return "persist-serialization"; }
  std::string_view description() const override {
    return "src/persist and src/trace only: use fixed-width integer types "
           "(no size_t/long/int -- the wire layout must not vary by "
           "platform) and check every fwrite/fread return value";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    if (FC.Path.rfind("src/persist/", 0) != 0 &&
        FC.Path.rfind("src/trace/", 0) != 0)
      return;
    const std::vector<Token> &T = FC.Tokens;
    for (std::size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind != TokenKind::Identifier)
        continue;
      const std::string &Name = T[I].Text;
      if (oneOf(Name, {"size_t", "ssize_t", "ptrdiff_t", "time_t",
                       "intmax_t", "uintmax_t", "long", "short", "int",
                       "unsigned", "signed"}) &&
          isStdOrUnqualified(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                "platform-width integer type '" + Name +
                    "' in serialization code; the on-disk layout must not "
                    "vary by platform -- use std::uint32_t/std::uint64_t");
        continue;
      }
      if (oneOf(Name, {"fwrite", "fread"}) && nextIs(T, I, "(") &&
          isStdOrUnqualified(T, I)) {
        // The call expression starts at `std` when written std::fwrite.
        std::size_t Start = isStdQualified(T, I) ? I - 2 : I;
        // Statement position (or a discarding cast) means the transfer
        // count is dropped; any operator/assignment before the call
        // consumes it.
        bool Discarded = Start == 0;
        if (!Discarded) {
          const Token &Prev = T[Start - 1];
          Discarded = (Prev.Kind == TokenKind::Punct &&
                       oneOf(Prev.Text, {";", "{", "}", ")"})) ||
                      (Prev.Kind == TokenKind::Identifier &&
                       oneOf(Prev.Text, {"else", "do"})) ||
                      Prev.Kind == TokenKind::Directive;
        }
        if (Discarded)
          addDiag(FC, Out, name(), T[I].Line,
                  "unchecked " + Name +
                      "() return value; a short transfer is how torn files "
                      "are detected -- compare it against the requested "
                      "count");
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R7: obs-determinism — src/obs exports must be a pure function of the
// instrumented workload. Two mechanical bans keep them that way: wall
// clocks (the interval index is the only notion of time; a timestamped
// export can never be byte-stable across runs), and unordered containers
// (export enumeration riding hash layout varies across libstdc++ versions
// and ASLR; the registry iterates std::map by design).
//===----------------------------------------------------------------------===//

class ObsDeterminismRule final : public Rule {
public:
  std::string_view name() const override { return "obs-determinism"; }
  std::string_view description() const override {
    return "src/obs only: bans wall-clock reads (logical interval indices "
           "are the only clock) and unordered containers (export order "
           "must not depend on hash layout)";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    if (FC.L != Layer::Obs)
      return;
    const std::vector<Token> &T = FC.Tokens;
    for (std::size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind == TokenKind::Directive) {
        if (T[I].Text.find("include") != std::string::npos &&
            T[I].Text.find("<unordered_") != std::string::npos)
          addDiag(FC, Out, name(), T[I].Line,
                  "unordered container header in src/obs; metric and event "
                  "enumeration must use std::map/std::set so exports are "
                  "byte-stable");
        continue;
      }
      if (T[I].Kind != TokenKind::Identifier)
        continue;
      const std::string &Name = T[I].Text;
      if (oneOf(Name, {"unordered_map", "unordered_set", "unordered_multimap",
                       "unordered_multiset"}) &&
          isStdOrUnqualified(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                "std::" + Name +
                    " in src/obs; hash iteration order would leak into "
                    "exported bytes -- use std::map/std::set");
        continue;
      }
      if (oneOf(Name, {"time", "clock", "gettimeofday", "clock_gettime",
                       "localtime", "gmtime", "mktime", "ctime"}) &&
          nextIs(T, I, "(") && isStdOrUnqualified(T, I) &&
          looksLikeCall(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                "wall-clock call (" + Name +
                    ") in src/obs; the instrumented subsystem's interval "
                    "index is the only clock exports may carry");
        continue;
      }
      if (oneOf(Name, {"steady_clock", "system_clock",
                       "high_resolution_clock", "file_clock", "utc_clock"}) &&
          I + 2 < T.size() && isPunct(T[I + 1], "::") &&
          isId(T[I + 2], "now")) {
        addDiag(FC, Out, name(), T[I].Line,
                "std::chrono::" + Name +
                    "::now() in src/obs; timestamped metrics can never "
                    "export byte-identically across runs");
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R10: hotpath — functions tagged REGMON_HOT (support/HotpathKernels.h)
// run once per sample or per interval end; heap allocation or an indirect
// member call in one of them silently undoes the flat-kernel design.
//===----------------------------------------------------------------------===//

class HotpathRule final : public Rule {
public:
  std::string_view name() const override { return "hotpath"; }
  std::string_view description() const override {
    return "src/core, src/gpd, src/sampling, src/sim, src/support: bans "
           "heap allocation (new/malloc/make_unique), container growth "
           "(push_back/resize/...), and indirect member calls (p->f()) "
           "inside function bodies tagged REGMON_HOT";
  }

  void check(const FileContext &FC, std::vector<Diagnostic> &Out) const override {
    if (FC.L != Layer::Deterministic && FC.L != Layer::Support)
      return;
    const std::vector<Token> &T = FC.Tokens;
    for (std::size_t I = 0; I < T.size(); ++I) {
      if (!isId(T[I], "REGMON_HOT"))
        continue;
      // Walk the signature to the body: skip balanced parens (parameter
      // lists, noexcept clauses); a `;` first means a bare declaration.
      std::size_t J = I + 1;
      // The tag's own definition line (`#define REGMON_HOT`) is a
      // directive token, never an identifier, so it cannot land here.
      while (J < T.size() && !isPunct(T[J], "{") && !isPunct(T[J], ";")) {
        if (isPunct(T[J], "("))
          J = skipBalanced(T, J, "(", ")");
        else
          ++J;
      }
      if (J >= T.size() || isPunct(T[J], ";"))
        continue;
      const std::size_t BodyEnd = skipBalanced(T, J, "{", "}");
      checkBody(FC, T, J, BodyEnd, Out);
      I = BodyEnd - 1;
    }
  }

private:
  void checkBody(const FileContext &FC, const std::vector<Token> &T,
                 std::size_t Begin, std::size_t End,
                 std::vector<Diagnostic> &Out) const {
    for (std::size_t I = Begin; I < End; ++I) {
      if (T[I].Kind != TokenKind::Identifier)
        continue;
      const std::string &Name = T[I].Text;
      if (Name == "new" && isStdOrUnqualified(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                "operator new inside a REGMON_HOT function; the hot path "
                "must run allocation-free -- use pre-sized scratch owned "
                "by the caller");
        continue;
      }
      if (oneOf(Name, {"malloc", "calloc", "realloc", "aligned_alloc"}) &&
          nextIs(T, I, "(") && isStdOrUnqualified(T, I) &&
          looksLikeCall(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                Name + " inside a REGMON_HOT function; the hot path must "
                       "run allocation-free");
        continue;
      }
      if (oneOf(Name, {"make_unique", "make_shared"}) &&
          isStdOrUnqualified(T, I)) {
        addDiag(FC, Out, name(), T[I].Line,
                "std::" + Name +
                    " inside a REGMON_HOT function; the hot path must run "
                    "allocation-free");
        continue;
      }
      if (oneOf(Name, {"push_back", "emplace_back", "emplace", "resize",
                       "reserve", "insert"}) &&
          nextIs(T, I, "(") && I > Begin &&
          (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->"))) {
        addDiag(FC, Out, name(), T[I].Line,
                "container growth (" + Name +
                    ") inside a REGMON_HOT function; it can reallocate "
                    "per sample -- size scratch buffers at interval start");
        continue;
      }
      // p->f(): an indirect member call. Virtual or not, the compiler
      // cannot keep the hot loop flat across an opaque pointer chase;
      // direct (`.`) member calls on locals and fields stay allowed.
      if (nextIs(T, I, "(") && I > Begin && isPunct(T[I - 1], "->")) {
        addDiag(FC, Out, name(), T[I].Line,
                "indirect member call (->" + Name +
                    ") inside a REGMON_HOT function; hot-path kernels must "
                    "not dispatch through pointers per sample");
      }
    }
  }
};

} // namespace

const std::vector<std::unique_ptr<Rule>> &allRules() {
  static const std::vector<std::unique_ptr<Rule>> Rules = [] {
    std::vector<std::unique_ptr<Rule>> R;
    R.push_back(std::make_unique<NondeterminismRule>());
    R.push_back(std::make_unique<ConcurrencyRule>());
    R.push_back(std::make_unique<MemoryOrderRule>());
    R.push_back(std::make_unique<IterationOrderRule>());
    R.push_back(std::make_unique<HeaderHygieneRule>());
    R.push_back(std::make_unique<AssertSideEffectsRule>());
    R.push_back(std::make_unique<SwallowedExceptionRule>());
    R.push_back(std::make_unique<PersistSerializationRule>());
    R.push_back(std::make_unique<ObsDeterminismRule>());
    R.push_back(std::make_unique<HotpathRule>());
    return R;
  }();
  return Rules;
}

std::vector<Diagnostic> runRules(const FileContext &FC) {
  std::vector<Diagnostic> Out;
  for (const std::unique_ptr<Rule> &R : allRules())
    R->check(FC, Out);
  // Drop inline-suppressed diagnostics.
  std::erase_if(Out, [&FC](const Diagnostic &D) {
    auto It = FC.Allowed.find(D.Line);
    if (It == FC.Allowed.end())
      return false;
    return It->second.count(D.Rule) != 0 || It->second.count("all") != 0;
  });
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Line != B.Line)
                       return A.Line < B.Line;
                     return A.Rule < B.Rule;
                   });
  return Out;
}

//===----------------------------------------------------------------------===//
// Graph rules (R11-R13): run once over the whole-repo call graph instead
// of per file. Where the token rules pattern-match a body's own text, the
// graph rules *prove* the transitive contract: an annotated root is clean
// only if nothing reachable from it carries a banned effect. Findings are
// anchored at the root's declaration line (so the baseline key works like
// any other rule) and carry the full offending call chain in the message.
//===----------------------------------------------------------------------===//

namespace {

std::string_view effectNoun(unsigned Bit) {
  switch (Bit) {
  case EffAlloc:
    return "heap allocation";
  case EffNondet:
    return "nondeterminism (wall clock / libc rand / random_device)";
  case EffConcurrency:
    return "a concurrency primitive";
  case EffIo:
    return "I/O";
  case EffGlobalWrite:
    return "a write to file-scope mutable state";
  case EffIndirect:
    return "an indirect member call";
  }
  return "a banned effect";
}

} // namespace

const std::vector<GraphRuleInfo> &graphRules() {
  static const std::vector<GraphRuleInfo> Rules = {
      {"purity-hot",
       "everything transitively reachable from a REGMON_HOT body must be "
       "allocation-free, deterministic, and free of indirect calls"},
      {"purity",
       "REGMON_PURE functions must not transitively reach wall clocks, "
       "I/O, or writes to file-scope mutable state (allocation and "
       "layer-confined atomics are permitted)"},
      {"purity-confinement",
       "deterministic/support-layer functions must not transitively reach "
       "concurrency primitives that live outside src/service and src/obs"},
  };
  return Rules;
}

std::vector<Diagnostic>
runGraphRules(const CallGraph &G, const std::vector<FileContext> &Files) {
  std::vector<Diagnostic> Out;
  std::map<std::string, const FileContext *> ByPath;
  for (const FileContext &FC : Files)
    ByPath[FC.Path] = &FC;

  auto allowedAt = [&](const std::string &Path, int Line,
                       std::string_view RuleName) {
    auto It = ByPath.find(Path);
    if (It == ByPath.end())
      return false;
    auto AIt = It->second->Allowed.find(Line);
    if (AIt == It->second->Allowed.end())
      return false;
    return AIt->second.count(std::string(RuleName)) != 0 ||
           AIt->second.count("all") != 0;
  };

  // One diagnostic per (root, banned bit): shortest chain to a node whose
  // *direct* facts carry the bit. Inline `allow()` works at the root line
  // (waive the whole contract for this root) and at the evidence line
  // (exempt one known-benign effect for every root that reaches it).
  auto emit = [&](std::size_t RootIdx, std::string_view RuleName,
                  unsigned Bit, std::string_view Why,
                  const std::function<bool(const GraphNode &)> &TargetPred,
                  std::size_t MinChain) {
    const GraphNode &Root = G.nodes()[RootIdx];
    std::vector<std::size_t> Path = G.chain(RootIdx, TargetPred);
    if (Path.empty() || Path.size() < MinChain)
      return;
    const GraphNode &Target = G.nodes()[Path.back()];
    const EffectEvidence *Ev = nullptr;
    for (const EffectEvidence &E : Target.Evidence)
      if (E.Bit == Bit) {
        Ev = &E;
        break;
      }
    const int EvLine = Ev ? Ev->Line : Target.Line;
    if (allowedAt(Root.File, Root.Line, RuleName) ||
        allowedAt(Target.File, EvLine, RuleName))
      return;
    std::string Snippet;
    if (auto It = ByPath.find(Root.File); It != ByPath.end())
      Snippet = normalizeLine(It->second->line(Root.Line));
    std::string Msg = std::string(Why);
    Msg += effectNoun(Bit);
    Msg += ": ";
    Msg += G.formatChain(Path);
    Msg += " (";
    Msg += Target.File;
    Msg += ":";
    Msg += std::to_string(EvLine);
    Msg += ": ";
    Msg += Ev ? Ev->Detail : std::string(effectName(Bit));
    Msg += ")";
    Out.push_back(Diagnostic{std::string(RuleName), Root.File, Root.Line,
                             std::move(Msg), std::move(Snippet), false});
  };

  const std::vector<GraphNode> &Nodes = G.nodes();
  for (std::size_t NI = 0; NI < Nodes.size(); ++NI) {
    const GraphNode &N = Nodes[NI];
    if (N.Hot) {
      for (unsigned Bit : {EffAlloc, EffNondet, EffIndirect})
        if (N.Transitive & Bit)
          emit(
              NI, "purity-hot", Bit, "REGMON_HOT function reaches ",
              [Bit](const GraphNode &T) { return (T.Direct & Bit) != 0; },
              1);
    }
    if (N.Pure) {
      for (unsigned Bit : {EffNondet, EffIo, EffGlobalWrite})
        if (N.Transitive & Bit)
          emit(
              NI, "purity", Bit, "REGMON_PURE function reaches ",
              [Bit](const GraphNode &T) { return (T.Direct & Bit) != 0; },
              1);
    }
    // Concurrency confinement: a deterministic/support root may reach
    // atomics that *live* in their sanctioned homes (src/service, src/obs
    // -- and tests/bench exercising them), but not concurrency smuggled
    // into the deterministic layers through a helper. Direct usage
    // (chain length 1) is already the token `concurrency` rule's job.
    if ((N.L == Layer::Deterministic || N.L == Layer::Support) &&
        (N.Transitive & EffConcurrency) != 0)
      emit(
          NI, "purity-confinement", EffConcurrency,
          "deterministic-layer function reaches ",
          [](const GraphNode &T) {
            return (T.Direct & EffConcurrency) != 0 &&
                   T.L != Layer::Service && T.L != Layer::Obs &&
                   T.L != Layer::Tests && T.L != Layer::Bench;
          },
          2);
  }

  std::stable_sort(Out.begin(), Out.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Path != B.Path)
                       return A.Path < B.Path;
                     if (A.Line != B.Line)
                       return A.Line < B.Line;
                     return A.Rule < B.Rule;
                   });
  return Out;
}

std::string ruleExplanation(std::string_view RuleName) {
  if (RuleName == "purity-hot")
    return "purity-hot -- the REGMON_HOT transitive contract\n"
           "\n"
           "Functions tagged REGMON_HOT (support/Contracts.h) run once per\n"
           "sample or per interval end. The per-file `hotpath` rule scans\n"
           "only the tagged body's own tokens, so an allocation hidden one\n"
           "call below it -- or laundered through a pointer -- passes. This\n"
           "rule closes that hole: it builds the whole-repo call graph,\n"
           "propagates per-function effect sets to a fixed point, and\n"
           "reports any REGMON_HOT root that can transitively reach heap\n"
           "allocation, nondeterminism, or an indirect member call. The\n"
           "finding is anchored at the root and carries the full offending\n"
           "chain, e.g.\n"
           "    recomputeMoments -> helper -> grow (src/x.cpp:42: operator "
           "new)\n"
           "\n"
           "Fix by hoisting the allocation to the caller (pre-sized\n"
           "scratch), or exempt a known-benign site with\n"
           "`// regmon-lint: allow(purity-hot)` on the evidence line.";
  if (RuleName == "purity")
    return "purity -- the REGMON_PURE determinism contract\n"
           "\n"
           "REGMON_PURE marks the replay-critical decision paths: detector\n"
           "interval-end transitions, fault-plan draws, and similarity\n"
           "combines. Their outputs must be a pure function of their\n"
           "inputs, so nothing they transitively call may read wall\n"
           "clocks, libc randomness or std::random_device, perform I/O, or\n"
           "write file-scope mutable state. Allocation is deliberately\n"
           "allowed (adopting a phase table allocates) and so are atomics\n"
           "confined to src/obs (the observability counters are designed\n"
           "to be replay-stable); see purity-confinement for the latter.\n"
           "Violations print the full call chain from the annotated root\n"
           "to the offending token.";
  if (RuleName == "purity-confinement")
    return "purity-confinement -- concurrency stays in its sanctioned "
           "homes\n"
           "\n"
           "The per-file `concurrency` rule bans std::thread/mutex/atomic\n"
           "tokens from deterministic-layer files, but cannot see a helper\n"
           "defined elsewhere that wraps a mutex and is called from\n"
           "src/core. This rule checks reachability: a deterministic- or\n"
           "support-layer function must not transitively reach a function\n"
           "that directly uses a concurrency primitive unless that\n"
           "function lives in src/service or src/obs (or tests/bench).\n"
           "Chains of length 1 are the token rule's territory and are not\n"
           "re-reported here.";
  for (const std::unique_ptr<Rule> &R : allRules())
    if (R->name() == RuleName)
      return std::string(R->name()) + " -- " + std::string(R->description());
  return {};
}

} // namespace regmon::lint
