//===- tools/lint/CallGraph.cpp - Cross-TU call graph ---------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "CallGraph.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <ostream>

using namespace regmon::lint;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// True when repo path \p Path is what `#include "Inc"` refers to: equal,
/// or ends with "/Inc".
bool includeMatches(const std::string &Path, const std::string &Inc) {
  if (Path == Inc)
    return true;
  if (Path.size() <= Inc.size())
    return false;
  return Path[Path.size() - Inc.size() - 1] == '/' &&
         Path.compare(Path.size() - Inc.size(), Inc.size(), Inc) == 0;
}

std::string effectListJson(unsigned Mask) {
  std::string S = "[";
  bool First = true;
  for (unsigned Bit : {EffAlloc, EffNondet, EffConcurrency, EffIo,
                       EffGlobalWrite, EffIndirect})
    if (Mask & Bit) {
      if (!First)
        S += ",";
      First = false;
      S += '"';
      S += effectName(Bit);
      S += '"';
    }
  return S + "]";
}

} // namespace

CallGraph CallGraph::build(const std::vector<FileContext> &Files) {
  CallGraph G;

  std::vector<ParsedFile> Parsed;
  Parsed.reserve(Files.size());
  for (const FileContext &FC : Files)
    Parsed.push_back(parseFile(FC));

  // Global class table: names, per-class transitive ancestors, and the
  // inverse (derived) closure for virtual dispatch edges.
  std::set<std::string> ClassNames;
  std::map<std::string, std::set<std::string>> BasesOf;
  for (const ParsedFile &P : Parsed)
    for (const auto &[C, Bs] : P.Classes) {
      ClassNames.insert(C);
      for (const std::string &B : Bs)
        BasesOf[C].insert(B);
    }
  std::map<std::string, std::set<std::string>> Ancestors, DerivedOf;
  for (const std::string &C : ClassNames) {
    std::set<std::string> Anc;
    std::vector<std::string> Work{C};
    while (!Work.empty()) {
      std::string Cur = Work.back();
      Work.pop_back();
      auto It = BasesOf.find(Cur);
      if (It == BasesOf.end())
        continue;
      for (const std::string &B : It->second)
        if (Anc.insert(B).second)
          Work.push_back(B);
    }
    for (const std::string &B : Anc)
      DerivedOf[B].insert(C);
    Ancestors[C] = std::move(Anc);
  }

  // Nodes: one per function *definition*. A qualifier that is not a known
  // class was a namespace — demote to free function.
  std::vector<std::size_t> NodeFile;
  std::map<std::string, unsigned> DeclFlags; // "Class::name" / "name" -> bits
  auto flagKey = [](const std::string &Cls, const std::string &Name) {
    return Cls.empty() ? Name : Cls + "::" + Name;
  };
  for (std::size_t FI = 0; FI < Files.size(); ++FI) {
    for (const ParsedFunction &F : Parsed[FI].Functions) {
      std::string Cls = F.ClassName;
      if (!Cls.empty() && ClassNames.count(Cls) == 0)
        Cls.clear();
      if (F.Hot || F.Pure)
        DeclFlags[flagKey(Cls, F.Name)] |=
            (F.Hot ? 1u : 0u) | (F.Pure ? 2u : 0u);
      if (!F.HasBody)
        continue;
      GraphNode N;
      N.Name = F.Name;
      N.ClassName = Cls;
      N.Display = flagKey(Cls, F.Name);
      N.File = Files[FI].Path;
      N.Line = F.Line;
      N.L = Files[FI].L;
      N.Hot = F.Hot;
      N.Pure = F.Pure;
      N.Internal = F.Internal;
      FunctionFacts Facts =
          extractFacts(Files[FI], F, Parsed[FI].MutableGlobals);
      N.Direct = Facts.Direct;
      N.Evidence = std::move(Facts.Evidence);
      N.Calls = std::move(Facts.Calls);
      G.Nodes.push_back(std::move(N));
      NodeFile.push_back(FI);
    }
  }
  // Annotations on out-of-line declarations (header tags the contract, the
  // .cpp holds the body) reach the definition node here.
  for (GraphNode &N : G.Nodes) {
    auto It = DeclFlags.find(N.Display);
    if (It == DeclFlags.end())
      continue;
    N.Hot = N.Hot || (It->second & 1u);
    N.Pure = N.Pure || (It->second & 2u);
  }

  // Symbol table: methods by "Class::name", free functions by name.
  std::map<std::string, std::vector<std::size_t>> MethodIndex, FreeIndex;
  for (std::size_t NI = 0; NI < G.Nodes.size(); ++NI) {
    const GraphNode &N = G.Nodes[NI];
    if (N.ClassName.empty())
      FreeIndex[N.Name].push_back(NI);
    else
      MethodIndex[N.Display].push_back(NI);
  }

  // Per-file visible classes: classes named anywhere in the file or in a
  // directly-included repo header, expanded by the derived closure so a
  // call through a base reference links to every override.
  std::vector<std::set<std::string>> VisClasses(Files.size());
  for (std::size_t FI = 0; FI < Files.size(); ++FI) {
    std::set<std::string> Idents = Parsed[FI].Identifiers;
    for (const std::string &Inc : Parsed[FI].Includes)
      for (std::size_t FJ = 0; FJ < Files.size(); ++FJ)
        if (includeMatches(Files[FJ].Path, Inc))
          Idents.insert(Parsed[FJ].Identifiers.begin(),
                        Parsed[FJ].Identifiers.end());
    std::set<std::string> Vis;
    for (const std::string &C : ClassNames)
      if (Idents.count(C) != 0)
        Vis.insert(C);
    for (const std::string &C : Vis)
      if (auto It = DerivedOf.find(C); It != DerivedOf.end())
        VisClasses[FI].insert(It->second.begin(), It->second.end());
    VisClasses[FI].insert(Vis.begin(), Vis.end());
  }

  // Edge resolution.
  for (std::size_t NI = 0; NI < G.Nodes.size(); ++NI) {
    GraphNode &N = G.Nodes[NI];
    const std::size_t FI = NodeFile[NI];
    std::set<std::size_t> Edges;
    for (const CallSiteInfo &CS : N.Calls) {
      if (CS.StdQualified || CS.Qualifier == "std")
        continue; // std effects are extracted directly, not via edges
      std::set<std::size_t> Cand;
      auto addMethods = [&](const std::string &Cls) {
        auto It = MethodIndex.find(Cls + "::" + CS.Name);
        if (It != MethodIndex.end())
          Cand.insert(It->second.begin(), It->second.end());
      };
      auto addFree = [&] {
        auto It = FreeIndex.find(CS.Name);
        if (It != FreeIndex.end())
          Cand.insert(It->second.begin(), It->second.end());
      };
      if (!CS.Qualifier.empty()) {
        if (ClassNames.count(CS.Qualifier) != 0) {
          addMethods(CS.Qualifier);
          if (Cand.empty())
            for (const std::string &A : Ancestors[CS.Qualifier])
              addMethods(A);
        } else {
          addFree(); // namespace-qualified free call
        }
      } else if (CS.Member && !CS.ThisCall) {
        for (const std::string &C : VisClasses[FI])
          addMethods(C);
      } else {
        // Unqualified (or this->): same class first, then the base chain
        // and overrides, then constructors, then free functions.
        if (!N.ClassName.empty()) {
          addMethods(N.ClassName);
          if (auto It = Ancestors.find(N.ClassName); It != Ancestors.end())
            for (const std::string &A : It->second)
              addMethods(A);
          if (auto It = DerivedOf.find(N.ClassName); It != DerivedOf.end())
            for (const std::string &D : It->second)
              addMethods(D);
        }
        if (Cand.empty() && ClassNames.count(CS.Name) != 0)
          addMethods(CS.Name); // constructor: Name::Name
        if (Cand.empty())
          addFree();
      }
      // Internal-linkage symbols only resolve from their own file.
      for (auto It = Cand.begin(); It != Cand.end();)
        if (G.Nodes[*It].Internal && NodeFile[*It] != FI)
          It = Cand.erase(It);
        else
          ++It;
      if (Cand.empty())
        ++N.Unresolved;
      else
        Edges.insert(Cand.begin(), Cand.end());
    }
    N.Callees.assign(Edges.begin(), Edges.end());
  }

  // Effect propagation to a fixed point (bitwise-OR join; monotone over a
  // finite lattice, so this terminates).
  for (GraphNode &N : G.Nodes)
    N.Transitive = N.Direct;
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (GraphNode &N : G.Nodes) {
      unsigned M = N.Transitive;
      for (std::size_t C : N.Callees)
        M |= G.Nodes[C].Transitive;
      if (M != N.Transitive) {
        N.Transitive = M;
        Changed = true;
      }
    }
  }
  return G;
}

std::vector<std::size_t>
CallGraph::chain(std::size_t Root,
                 const std::function<bool(const GraphNode &)> &Pred) const {
  std::vector<std::size_t> Parent(Nodes.size(), SIZE_MAX);
  std::vector<char> Seen(Nodes.size(), 0);
  std::deque<std::size_t> Queue{Root};
  Seen[Root] = 1;
  while (!Queue.empty()) {
    std::size_t Cur = Queue.front();
    Queue.pop_front();
    if (Pred(Nodes[Cur])) {
      std::vector<std::size_t> Path;
      for (std::size_t P = Cur; P != SIZE_MAX; P = Parent[P])
        Path.push_back(P);
      std::reverse(Path.begin(), Path.end());
      return Path;
    }
    for (std::size_t C : Nodes[Cur].Callees)
      if (!Seen[C]) {
        Seen[C] = 1;
        Parent[C] = Cur;
        Queue.push_back(C);
      }
  }
  return {};
}

std::string CallGraph::formatChain(const std::vector<std::size_t> &Path) const {
  std::string S;
  for (std::size_t N : Path) {
    if (!S.empty())
      S += " -> ";
    S += Nodes[N].Display;
  }
  return S;
}

void CallGraph::dumpJson(std::ostream &OS) const {
  OS << "{\n  \"nodes\": [\n";
  for (std::size_t NI = 0; NI < Nodes.size(); ++NI) {
    const GraphNode &N = Nodes[NI];
    OS << "    {\"id\": " << NI << ", \"name\": \"" << jsonEscape(N.Display)
       << "\", \"file\": \"" << jsonEscape(N.File)
       << "\", \"line\": " << N.Line << ", \"layer\": \"" << layerName(N.L)
       << "\", \"hot\": " << (N.Hot ? "true" : "false")
       << ", \"pure\": " << (N.Pure ? "true" : "false")
       << ", \"internal\": " << (N.Internal ? "true" : "false")
       << ", \"direct\": " << effectListJson(N.Direct)
       << ", \"transitive\": " << effectListJson(N.Transitive)
       << ", \"unresolved\": " << N.Unresolved << ", \"callees\": [";
    for (std::size_t CI = 0; CI < N.Callees.size(); ++CI)
      OS << (CI ? ", " : "") << N.Callees[CI];
    OS << "], \"evidence\": [";
    for (std::size_t EI = 0; EI < N.Evidence.size(); ++EI) {
      const EffectEvidence &E = N.Evidence[EI];
      OS << (EI ? ", " : "") << "{\"effect\": \"" << effectName(E.Bit)
         << "\", \"line\": " << E.Line << ", \"detail\": \""
         << jsonEscape(E.Detail) << "\"}";
    }
    OS << "]}" << (NI + 1 < Nodes.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
}

void CallGraph::dumpDot(std::ostream &OS) const {
  OS << "digraph regmon_callgraph {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  for (std::size_t NI = 0; NI < Nodes.size(); ++NI) {
    const GraphNode &N = Nodes[NI];
    OS << "  n" << NI << " [label=\"" << jsonEscape(N.Display) << "\\n"
       << jsonEscape(N.File) << ":" << N.Line;
    if (N.Direct != 0)
      OS << "\\n[" << effectList(N.Direct) << "]";
    OS << "\"";
    if (N.Hot)
      OS << ", color=red";
    else if (N.Pure)
      OS << ", color=blue";
    OS << "];\n";
  }
  for (std::size_t NI = 0; NI < Nodes.size(); ++NI)
    for (std::size_t C : Nodes[NI].Callees)
      OS << "  n" << NI << " -> n" << C << ";\n";
  OS << "}\n";
}
