//===- tools/lint/Lint.h - regmon-lint core types and rule API --*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core types for regmon-lint, the project-specific static analyzer that
/// mechanically enforces the invariants the reproduction's correctness
/// argument rests on: no wall-clock or libc-rand nondeterminism in the
/// deterministic layers, concurrency primitives confined to src/service,
/// explicit memory orders on every atomic access, no unordered-container
/// iteration feeding result-bearing output, and basic header hygiene.
///
/// The analyzer is deliberately not a full C++ front end. It works on a
/// comment/literal-stripped token stream (see Lexer.cpp), which is exact
/// enough for the project's rules and keeps the tool dependency-free and
/// fast. Escape hatches exist for the residual false positives: inline
/// `// regmon-lint: allow(<rule>)` comments and the checked-in baseline
/// (tools/lint/baseline.txt).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TOOLS_LINT_LINT_H
#define REGMON_TOOLS_LINT_LINT_H

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace regmon::lint {

/// Which architectural layer a file belongs to. Rules opt in per layer;
/// the mapping from path to layer is classifyPath().
enum class Layer {
  Deterministic, ///< src/core, src/sim, src/gpd, src/sampling: bit-identical
                 ///< replay is a hard requirement here.
  Support,       ///< src/support, src/rto, src/workloads: deterministic
                 ///< libraries, but clocks are tolerated (none used today).
  Service,       ///< src/service: the only production home for threads,
                 ///< locks and atomics.
  Obs,           ///< src/obs: lock-free metrics; atomics allowed, but wall
                 ///< clocks and hash-ordered export are banned -- exported
                 ///< bytes must replay identically.
  Tools,         ///< tools/: CLIs and this linter.
  Bench,         ///< bench/: timing code, clocks and threads expected.
  Tests,         ///< tests/: gtest suites, exempt from layer bans.
  Other,         ///< anything else handed to the tool explicitly.
};

/// Maps a repo-relative path (forward slashes) to its layer.
Layer classifyPath(std::string_view RelPath);

/// Human-readable layer name (for --json and diagnostics).
std::string_view layerName(Layer L);

enum class TokenKind {
  Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
  Literal,    ///< string, char or numeric literal (content not scanned)
  Punct,      ///< operator/punctuator; multi-char ops are single tokens
  Directive,  ///< a whole preprocessor logical line, continuations spliced
};

struct Token {
  TokenKind Kind;
  std::string Text;
  int Line; ///< 1-based line of the token's first character.
};

/// A lexed file plus everything the rules need to judge it.
struct FileContext {
  std::string Path; ///< repo-relative, forward slashes
  Layer L = Layer::Other;
  bool IsHeader = false;
  std::vector<std::string> Lines; ///< raw source lines, 0-based storage
  std::vector<Token> Tokens;
  /// Line -> rules allowed there via `// regmon-lint: allow(rule,...)`.
  /// The wildcard "all" suppresses every rule on that line.
  std::map<int, std::set<std::string>> Allowed;

  /// Returns the raw source line (1-based), or "" when out of range.
  std::string_view line(int LineNo) const;
};

/// Lexes \p Source into a FileContext. \p RelPath determines layer and
/// header-ness unless \p Override is provided (tests use the override to
/// pin fixture files to a specific layer).
FileContext buildContext(std::string RelPath, std::string_view Source);
FileContext buildContext(std::string RelPath, std::string_view Source,
                         Layer Override);

struct Diagnostic {
  std::string Rule;
  std::string Path;
  int Line = 0;
  std::string Message;
  std::string Snippet;   ///< whitespace-normalized source line (baseline key)
  bool Baselined = false;
};

/// Collapses whitespace runs to single spaces and trims; the baseline
/// matches on this so diagnostics survive reformatting and line shifts.
std::string normalizeLine(std::string_view S);

/// A single lint rule. Implementations live in Rules.cpp; add new rules to
/// allRules() there and document them in DESIGN.md §8.
class Rule {
public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void check(const FileContext &FC,
                     std::vector<Diagnostic> &Out) const = 0;
};

/// The rule registry, in stable order.
const std::vector<std::unique_ptr<Rule>> &allRules();

/// Runs every registered rule over \p FC and filters inline-suppressed
/// diagnostics. Results are ordered by (line, rule).
std::vector<Diagnostic> runRules(const FileContext &FC);

} // namespace regmon::lint

#endif // REGMON_TOOLS_LINT_LINT_H
