//===- tools/lint/Driver.h - Tree walk, reporting, exit codes ---*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef REGMON_TOOLS_LINT_DRIVER_H
#define REGMON_TOOLS_LINT_DRIVER_H

#include "Lint.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace regmon::lint {

class CallGraph;

struct DriverOptions {
  std::string Root = ".";          ///< repo root; rel paths resolve here
  std::vector<std::string> Paths;  ///< dirs/files relative to Root;
                                   ///< empty = {"src","tools","bench"}
  std::string BaselinePath;        ///< empty = Root/tools/lint/baseline.txt
                                   ///< when that file exists
  bool UseBaseline = true;
  bool Json = false;
  bool WriteBaseline = false;
  bool CheckBaseline = false; ///< stale baseline entries become errors
};

struct RunResult {
  std::vector<Diagnostic> Diags;      ///< sorted by (path, line, rule)
  std::vector<std::string> Stale;     ///< unconsumed baseline entries
  std::vector<std::string> Errors;    ///< IO/baseline parse errors
  std::size_t FilesScanned = 0;
  std::size_t NewCount = 0;           ///< non-baselined diagnostics
  std::size_t BaselinedCount = 0;
  /// The cross-TU call graph built over the scanned files (for --graph
  /// dumps and tests); always populated on a successful run.
  std::shared_ptr<const CallGraph> Graph;
};

/// Collects the C++ sources under Options.Paths (sorted, so output and
/// baselines are reproducible), lints each file, runs the whole-repo
/// call-graph purity pass over the set, and applies the baseline.
RunResult runLint(const DriverOptions &Options);

/// Renders \p R human-readable (default) to \p OS.
void printHuman(const RunResult &R, std::ostream &OS);

/// Renders \p R as a stable JSON document to \p OS.
void printJson(const RunResult &R, std::ostream &OS);

/// Exit code policy: 0 clean (baselined-only is clean), 1 new violations,
/// 2 usage or IO errors.
int exitCode(const RunResult &R);

} // namespace regmon::lint

#endif // REGMON_TOOLS_LINT_DRIVER_H
