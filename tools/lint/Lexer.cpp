//===- tools/lint/Lexer.cpp - Lightweight C++ scanner ---------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizes C++ source for the lint rules: comments and literals are
/// reduced to opaque tokens (so banned names inside strings never match),
/// preprocessor logical lines become single Directive tokens with
/// backslash continuations spliced, and multi-character operators are
/// emitted whole so rules can tell `=` from `==` and `:` from `::`.
/// Suppression comments (`// regmon-lint: allow(rule,...)`) are collected
/// per line while lexing: a comment sharing a line with code suppresses
/// that line, a comment on its own line suppresses the next line.
///
//===----------------------------------------------------------------------===//

#include "Lint.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace regmon::lint {

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Multi-character punctuators, longest first so greedy matching works.
constexpr std::array<std::string_view, 24> MultiPunct = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",
};

struct Scanner {
  std::string_view Src;
  std::size_t Pos = 0;
  int Line = 1;
  FileContext &FC;
  /// Last line that produced a non-directive token; used to decide whether
  /// an allow() comment guards its own line or the next one.
  int LastCodeLine = 0;

  explicit Scanner(std::string_view S, FileContext &Ctx) : Src(S), FC(Ctx) {}

  bool atEnd() const { return Pos >= Src.size(); }
  char peek(std::size_t Off = 0) const {
    return Pos + Off < Src.size() ? Src[Pos + Off] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n')
      ++Line;
    return C;
  }

  /// Consumes one backslash-newline splice (phase-2 line splicing) when the
  /// cursor sits on it. Splices join physical lines before tokenization, so
  /// an identifier or line comment may continue on the next physical line;
  /// without this, `std::ra\<newline>nd` lexes as two harmless identifiers
  /// and a rule match is silently missed.
  bool skipSplice() {
    if (peek() != '\\')
      return false;
    std::size_t Off = 1;
    if (peek(Off) == '\r')
      ++Off;
    if (peek(Off) != '\n')
      return false;
    advance(); // backslash
    if (peek() == '\r')
      advance();
    advance(); // newline (bumps Line)
    return true;
  }

  void emit(TokenKind K, std::string Text, int AtLine) {
    if (K != TokenKind::Directive)
      LastCodeLine = AtLine;
    FC.Tokens.push_back(Token{K, std::move(Text), AtLine});
  }

  /// Records `regmon-lint: allow(a,b)` markers found in comment text.
  void recordSuppressions(std::string_view Comment, int CommentLine,
                          bool SharesLineWithCode) {
    static constexpr std::string_view Marker = "regmon-lint:";
    std::size_t At = Comment.find(Marker);
    if (At == std::string_view::npos)
      return;
    std::size_t Open = Comment.find("allow(", At);
    if (Open == std::string_view::npos)
      return;
    std::size_t Close = Comment.find(')', Open);
    if (Close == std::string_view::npos)
      return;
    std::string_view List =
        Comment.substr(Open + 6, Close - (Open + 6));
    int Target = SharesLineWithCode ? CommentLine : CommentLine + 1;
    std::set<std::string> &Rules = FC.Allowed[Target];
    std::string Name;
    for (char C : List) {
      if (C == ',') {
        if (!Name.empty())
          Rules.insert(Name);
        Name.clear();
      } else if (!std::isspace(static_cast<unsigned char>(C))) {
        Name.push_back(C);
      }
    }
    if (!Name.empty())
      Rules.insert(Name);
  }

  void skipLineComment() {
    int StartLine = Line;
    bool Shares = LastCodeLine == StartLine;
    std::size_t Begin = Pos;
    while (!atEnd()) {
      // A line comment ending in a backslash splice swallows the next
      // physical line too -- that line is comment text, not code.
      if (peek() == '\\' && skipSplice())
        continue;
      if (peek() == '\n')
        break;
      ++Pos;
    }
    recordSuppressions(Src.substr(Begin, Pos - Begin), StartLine, Shares);
  }

  void skipBlockComment() {
    int StartLine = Line;
    bool Shares = LastCodeLine == StartLine;
    std::size_t Begin = Pos;
    while (!atEnd()) {
      if (peek() == '*' && peek(1) == '/') {
        recordSuppressions(Src.substr(Begin, Pos - Begin), StartLine, Shares);
        Pos += 2;
        return;
      }
      advance();
    }
  }

  void skipQuoted(char Quote) {
    while (!atEnd()) {
      char C = advance();
      if (C == '\\' && !atEnd())
        advance();
      else if (C == Quote || C == '\n')
        return; // unterminated-at-newline: recover at EOL
    }
  }

  /// R"delim( ... )delim" — needed so raw strings containing banned names
  /// (e.g. in this tool's own tests) stay opaque.
  void skipRawString() {
    std::string Delim;
    while (!atEnd() && peek() != '(' && Delim.size() < 16)
      Delim.push_back(advance());
    if (!atEnd())
      advance(); // '('
    std::string Close = ")" + Delim + "\"";
    std::size_t End = Src.find(Close, Pos);
    if (End == std::string_view::npos) {
      Pos = Src.size();
      return;
    }
    for (std::size_t I = Pos; I < End + Close.size(); ++I)
      if (Src[I] == '\n')
        ++Line;
    Pos = End + Close.size();
  }

  void lexDirective() {
    int StartLine = Line;
    std::string Text;
    while (!atEnd()) {
      char C = peek();
      if (C == '\n') {
        if (!Text.empty() && Text.back() == '\\') {
          Text.back() = ' ';
          advance();
          continue;
        }
        break;
      }
      if (C == '/' && peek(1) == '/') {
        LastCodeLine = Line; // the directive is code on this line
        skipLineComment();
        break;
      }
      if (C == '/' && peek(1) == '*') {
        LastCodeLine = Line;
        Pos += 2;
        skipBlockComment();
        Text.push_back(' ');
        continue;
      }
      Text.push_back(advance());
    }
    emit(TokenKind::Directive, normalizeLine(Text), StartLine);
  }

  void lexNumber() {
    int StartLine = Line;
    std::string Text;
    while (!atEnd()) {
      char C = peek();
      bool ExpSign = (C == '+' || C == '-') && !Text.empty() &&
                     (Text.back() == 'e' || Text.back() == 'E' ||
                      Text.back() == 'p' || Text.back() == 'P');
      if (isIdentChar(C) || C == '.' || C == '\'' || ExpSign)
        Text.push_back(advance());
      else
        break;
    }
    emit(TokenKind::Literal, std::move(Text), StartLine);
  }

  void run() {
    bool LineHasToken = false; // directives must be first on their line
    while (!atEnd()) {
      char C = peek();
      if (C == '\n') {
        LineHasToken = false;
        advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '\\' && skipSplice())
        continue; // splice between tokens: not a punctuator
      if (C == '/' && peek(1) == '/') {
        Pos += 2;
        skipLineComment();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        Pos += 2;
        skipBlockComment();
        continue;
      }
      if (C == '#' && !LineHasToken) {
        advance();
        lexDirective();
        LineHasToken = true;
        continue;
      }
      LineHasToken = true;
      if (C == '"') {
        int StartLine = Line;
        advance();
        skipQuoted('"');
        emit(TokenKind::Literal, "\"\"", StartLine);
        continue;
      }
      if (C == '\'') {
        int StartLine = Line;
        advance();
        skipQuoted('\'');
        emit(TokenKind::Literal, "''", StartLine);
        continue;
      }
      if (C == 'R' && peek(1) == '"') {
        int StartLine = Line;
        Pos += 2;
        skipRawString();
        emit(TokenKind::Literal, "\"\"", StartLine);
        continue;
      }
      if (isIdentStart(C)) {
        int StartLine = Line;
        std::string Text;
        while (!atEnd()) {
          if (isIdentChar(peek()))
            Text.push_back(advance());
          else if (!skipSplice()) // spliced identifiers continue next line
            break;
        }
        // Encoded string prefixes glued to a quote: u8"...", L"..."
        if (peek() == '"' &&
            (Text == "u8" || Text == "u" || Text == "U" || Text == "L")) {
          advance();
          skipQuoted('"');
          emit(TokenKind::Literal, "\"\"", StartLine);
        } else if (peek() == '"' && (Text == "u8R" || Text == "uR" ||
                                     Text == "UR" || Text == "LR")) {
          // Encoded *raw* string prefixes: the payload may span lines and
          // contain unescaped quotes, so it must go through the raw-string
          // scanner -- skipQuoted would cut it short and leak the payload
          // into the token stream as code.
          advance();
          skipRawString();
          emit(TokenKind::Literal, "\"\"", StartLine);
        } else {
          emit(TokenKind::Identifier, std::move(Text), StartLine);
        }
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C)) ||
          (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        lexNumber();
        continue;
      }
      // Punctuation, longest match first.
      bool Matched = false;
      for (std::string_view Op : MultiPunct) {
        if (Src.substr(Pos, Op.size()) == Op) {
          emit(TokenKind::Punct, std::string(Op), Line);
          Pos += Op.size();
          Matched = true;
          break;
        }
      }
      if (!Matched) {
        emit(TokenKind::Punct, std::string(1, C), Line);
        advance();
      }
    }
  }
};

} // namespace

std::string normalizeLine(std::string_view S) {
  std::string Out;
  bool PendingSpace = false;
  for (char C : S) {
    if (std::isspace(static_cast<unsigned char>(C))) {
      PendingSpace = !Out.empty();
    } else {
      if (PendingSpace)
        Out.push_back(' ');
      PendingSpace = false;
      Out.push_back(C);
    }
  }
  return Out;
}

Layer classifyPath(std::string_view RelPath) {
  auto StartsWith = [&](std::string_view Prefix) {
    return RelPath.substr(0, Prefix.size()) == Prefix;
  };
  if (StartsWith("src/core/") || StartsWith("src/sim/") ||
      StartsWith("src/gpd/") || StartsWith("src/sampling/") ||
      StartsWith("src/faults/") || StartsWith("src/fleet/") ||
      StartsWith("src/trace/"))
    return Layer::Deterministic;
  if (StartsWith("src/service/"))
    return Layer::Service;
  if (StartsWith("src/obs/"))
    return Layer::Obs;
  if (StartsWith("src/"))
    return Layer::Support;
  if (StartsWith("tools/"))
    return Layer::Tools;
  if (StartsWith("bench/"))
    return Layer::Bench;
  if (StartsWith("tests/"))
    return Layer::Tests;
  return Layer::Other;
}

std::string_view layerName(Layer L) {
  switch (L) {
  case Layer::Deterministic:
    return "deterministic";
  case Layer::Support:
    return "support";
  case Layer::Service:
    return "service";
  case Layer::Obs:
    return "obs";
  case Layer::Tools:
    return "tools";
  case Layer::Bench:
    return "bench";
  case Layer::Tests:
    return "tests";
  case Layer::Other:
    return "other";
  }
  return "other";
}

std::string_view FileContext::line(int LineNo) const {
  if (LineNo < 1 || static_cast<std::size_t>(LineNo) > Lines.size())
    return {};
  return Lines[static_cast<std::size_t>(LineNo) - 1];
}

static bool pathIsHeader(std::string_view Path) {
  auto EndsWith = [&](std::string_view Suffix) {
    return Path.size() >= Suffix.size() &&
           Path.substr(Path.size() - Suffix.size()) == Suffix;
  };
  return EndsWith(".h") || EndsWith(".hpp") || EndsWith(".hh");
}

FileContext buildContext(std::string RelPath, std::string_view Source,
                         Layer Override) {
  FileContext FC;
  FC.Path = std::move(RelPath);
  FC.L = Override;
  FC.IsHeader = pathIsHeader(FC.Path);
  std::size_t Start = 0;
  while (Start <= Source.size()) {
    std::size_t End = Source.find('\n', Start);
    if (End == std::string_view::npos) {
      if (Start < Source.size())
        FC.Lines.emplace_back(Source.substr(Start));
      break;
    }
    FC.Lines.emplace_back(Source.substr(Start, End - Start));
    Start = End + 1;
  }
  Scanner S(Source, FC);
  S.run();
  return FC;
}

FileContext buildContext(std::string RelPath, std::string_view Source) {
  Layer L = classifyPath(RelPath);
  return buildContext(std::move(RelPath), Source, L);
}

} // namespace regmon::lint
