//===- tools/lint/Baseline.cpp - Violation baseline -----------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Baseline.h"

#include <algorithm>
#include <sstream>

namespace regmon::lint {

std::string Baseline::key(const Diagnostic &D) {
  return D.Rule + "|" + D.Path + "|" + D.Snippet;
}

Baseline Baseline::parse(std::string_view Text) {
  Baseline B;
  std::size_t Start = 0;
  int LineNo = 0;
  while (Start <= Text.size()) {
    std::size_t End = Text.find('\n', Start);
    std::string_view Raw = End == std::string_view::npos
                               ? Text.substr(Start)
                               : Text.substr(Start, End - Start);
    ++LineNo;
    std::string Line = normalizeLine(Raw);
    if (!Line.empty() && Line[0] != '#') {
      // rule|path|snippet — snippet may itself contain '|', so split on
      // the first two separators only.
      std::size_t P1 = Line.find('|');
      std::size_t P2 = P1 == std::string::npos ? std::string::npos
                                               : Line.find('|', P1 + 1);
      if (P2 == std::string::npos) {
        B.Errors.push_back("baseline line " + std::to_string(LineNo) +
                           ": expected 'rule|path|snippet', got '" + Line +
                           "'");
      } else {
        ++B.Entries[Line];
        ++B.Total;
      }
    }
    if (End == std::string_view::npos)
      break;
    Start = End + 1;
  }
  return B;
}

std::string Baseline::render(const std::vector<Diagnostic> &Diags) {
  std::vector<std::string> Keys;
  Keys.reserve(Diags.size());
  for (const Diagnostic &D : Diags)
    Keys.push_back(key(D));
  std::sort(Keys.begin(), Keys.end());
  std::ostringstream Out;
  Out << "# regmon-lint baseline — grandfathered violations.\n"
      << "# Format: rule|path|normalized source line. Keep each entry\n"
      << "# justified with a comment; delete entries when the code is\n"
      << "# fixed (the tool warns about stale ones).\n";
  for (const std::string &K : Keys)
    Out << K << "\n";
  return Out.str();
}

std::size_t Baseline::apply(std::vector<Diagnostic> &Diags) {
  std::size_t Consumed = 0;
  for (Diagnostic &D : Diags) {
    auto It = Entries.find(key(D));
    if (It != Entries.end() && It->second > 0) {
      --It->second;
      D.Baselined = true;
      ++Consumed;
    }
  }
  return Consumed;
}

std::vector<std::string> Baseline::unconsumed() const {
  std::vector<std::string> Out;
  for (const auto &[Key, Count] : Entries)
    for (int I = 0; I < Count; ++I)
      Out.push_back(Key);
  return Out;
}

} // namespace regmon::lint
