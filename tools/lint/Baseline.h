//===- tools/lint/Baseline.h - Violation baseline ---------------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checked-in baseline (tools/lint/baseline.txt) grandfathers known,
/// justified violations so the lint gate can be strict for new code from
/// day one. An entry is `rule|path|normalized source line`; matching on
/// the normalized line text (not the line number) keeps entries stable
/// across unrelated edits. Entries are multiset-counted: two identical
/// violations need two identical entries.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TOOLS_LINT_BASELINE_H
#define REGMON_TOOLS_LINT_BASELINE_H

#include "Lint.h"

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace regmon::lint {

class Baseline {
public:
  /// Parses baseline text. Lines that are empty or start with '#' are
  /// comments. Malformed lines are collected in errors().
  static Baseline parse(std::string_view Text);

  /// Renders the given diagnostics as baseline entries (sorted, with a
  /// file header comment), suitable for writing back to baseline.txt.
  static std::string render(const std::vector<Diagnostic> &Diags);

  /// Marks diagnostics that match a remaining baseline entry as
  /// Baselined, consuming one entry per match. Returns the number of
  /// entries consumed.
  std::size_t apply(std::vector<Diagnostic> &Diags);

  /// Baseline entries that no diagnostic consumed — stale entries the
  /// owner should delete (reported as a warning, not an error).
  std::vector<std::string> unconsumed() const;

  const std::vector<std::string> &errors() const { return Errors; }
  std::size_t size() const { return Total; }

private:
  static std::string key(const Diagnostic &D);

  std::map<std::string, int> Entries; ///< key -> remaining count
  std::vector<std::string> Errors;
  std::size_t Total = 0;
};

} // namespace regmon::lint

#endif // REGMON_TOOLS_LINT_BASELINE_H
