//===- tools/lint/TokenUtil.h - Shared token-scan helpers -------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small token-stream predicates shared by the per-file rules (Rules.cpp)
/// and the call-graph pass (Parser.cpp / Effects.cpp). They encode the
/// project's conventions for reading the comment/literal-stripped stream:
/// how a `std::` qualification looks, what distinguishes a call site from
/// a declaration, and how to hop over balanced delimiter groups.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TOOLS_LINT_TOKENUTIL_H
#define REGMON_TOOLS_LINT_TOKENUTIL_H

#include "Lint.h"

#include <algorithm>
#include <initializer_list>

namespace regmon::lint {

inline bool isId(const Token &T, std::string_view S) {
  return T.Kind == TokenKind::Identifier && T.Text == S;
}

inline bool isPunct(const Token &T, std::string_view S) {
  return T.Kind == TokenKind::Punct && T.Text == S;
}

inline bool oneOf(std::string_view S,
                  std::initializer_list<std::string_view> Set) {
  return std::find(Set.begin(), Set.end(), S) != Set.end();
}

/// True when Tokens[I] is written `std::<name>` or unqualified; false when
/// it is a member access (`x.name`, `x->name`) or qualified by a namespace
/// other than std (`mylib::name`).
inline bool isStdOrUnqualified(const std::vector<Token> &Toks,
                               std::size_t I) {
  if (I == 0)
    return true;
  const Token &Prev = Toks[I - 1];
  if (isPunct(Prev, ".") || isPunct(Prev, "->"))
    return false;
  if (isPunct(Prev, "::"))
    return I >= 2 && isId(Toks[I - 2], "std");
  return true;
}

/// True when Tokens[I] is written exactly `std::<name>`.
inline bool isStdQualified(const std::vector<Token> &Toks, std::size_t I) {
  return I >= 2 && isPunct(Toks[I - 1], "::") && isId(Toks[I - 2], "std");
}

inline bool nextIs(const std::vector<Token> &Toks, std::size_t I,
                   std::string_view Punct) {
  return I + 1 < Toks.size() && isPunct(Toks[I + 1], Punct);
}

/// Distinguishes `time(...)` the call from `long time()` the declaration:
/// a call site is preceded by punctuation (`=`, `(`, `,`, `;`, `{`, ...)
/// or by `return`; a declaration is preceded by its return type.
inline bool looksLikeCall(const std::vector<Token> &Toks, std::size_t I) {
  if (I == 0)
    return false;
  const Token &Prev = Toks[I - 1];
  if (Prev.Kind == TokenKind::Identifier)
    return Prev.Text == "return" || Prev.Text == "co_return";
  return Prev.Kind == TokenKind::Punct;
}

/// Index one past the closing delimiter matching Toks[Open] (which must be
/// `(` `[` `{` or `<`). Returns Toks.size() when unbalanced.
inline std::size_t skipBalanced(const std::vector<Token> &Toks,
                                std::size_t Open, std::string_view OpenSym,
                                std::string_view CloseSym) {
  int Depth = 0;
  for (std::size_t I = Open; I < Toks.size(); ++I) {
    if (isPunct(Toks[I], OpenSym))
      ++Depth;
    else if (isPunct(Toks[I], CloseSym) && --Depth == 0)
      return I + 1;
    else if (OpenSym == "<" && isPunct(Toks[I], ">>")) {
      Depth -= 2;
      if (Depth <= 0)
        return I + 1;
    }
  }
  return Toks.size();
}

} // namespace regmon::lint

#endif // REGMON_TOOLS_LINT_TOKENUTIL_H
