//===- tools/lint/regmon_lint_main.cpp - regmon-lint CLI ------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// regmon-lint — the project's static analyzer for determinism and
/// concurrency discipline. Registered as the LintCleanTest ctest, so the
/// tier-1 `ctest` run fails on any new violation.
///
///   regmon-lint [options] [paths...]
///
///   --root <dir>        repo root (default: .); paths resolve against it
///   --baseline <file>   baseline file (default: <root>/tools/lint/baseline.txt)
///   --no-baseline       report grandfathered violations as errors too
///   --write-baseline    rewrite the baseline from the current violations
///   --check-baseline    fail (exit 2) on stale baseline entries
///   --json              machine-readable report on stdout
///   --graph <dot|json>  dump the cross-TU call graph (with per-node
///                       effect sets) to stdout; report goes to stderr
///   --explain <rule>    print the rule's contract and how to fix findings
///   --list-rules        print the rule registry and exit
///
/// Paths default to src, tools and bench. Exit codes: 0 clean, 1 new
/// violations, 2 usage/IO error.
///
//===----------------------------------------------------------------------===//

#include "Baseline.h"
#include "CallGraph.h"
#include "Driver.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string_view>

using namespace regmon::lint;

namespace {

int usage(std::ostream &OS, int Code) {
  OS << "usage: regmon-lint [--root <dir>] [--baseline <file>] "
        "[--no-baseline]\n"
        "                   [--write-baseline] [--check-baseline] [--json]\n"
        "                   [--graph <dot|json>] [--explain <rule>] "
        "[--list-rules]\n"
        "                   [paths...]\n";
  return Code;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Options;
  bool ListRules = false;
  std::string GraphFormat;
  std::string ExplainRule;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto NeedsValue = [&](std::string &Out) {
      if (I + 1 >= Argc) {
        std::cerr << "regmon-lint: error: " << Arg << " needs a value\n";
        return false;
      }
      Out = Argv[++I];
      return true;
    };
    if (Arg == "--root") {
      if (!NeedsValue(Options.Root))
        return usage(std::cerr, 2);
    } else if (Arg == "--baseline") {
      if (!NeedsValue(Options.BaselinePath))
        return usage(std::cerr, 2);
    } else if (Arg == "--no-baseline") {
      Options.UseBaseline = false;
    } else if (Arg == "--write-baseline") {
      Options.WriteBaseline = true;
    } else if (Arg == "--check-baseline") {
      Options.CheckBaseline = true;
    } else if (Arg == "--json") {
      Options.Json = true;
    } else if (Arg == "--graph") {
      if (!NeedsValue(GraphFormat))
        return usage(std::cerr, 2);
      if (GraphFormat != "dot" && GraphFormat != "json") {
        std::cerr << "regmon-lint: error: --graph wants 'dot' or 'json', "
                     "got '"
                  << GraphFormat << "'\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--explain") {
      if (!NeedsValue(ExplainRule))
        return usage(std::cerr, 2);
    } else if (Arg == "--list-rules") {
      ListRules = true;
    } else if (Arg == "--help" || Arg == "-h") {
      return usage(std::cout, 0);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "regmon-lint: error: unknown option " << Arg << "\n";
      return usage(std::cerr, 2);
    } else {
      Options.Paths.emplace_back(Arg);
    }
  }

  if (!ExplainRule.empty()) {
    std::string Text = ruleExplanation(ExplainRule);
    if (Text.empty()) {
      std::cerr << "regmon-lint: error: unknown rule '" << ExplainRule
                << "' (see --list-rules)\n";
      return 2;
    }
    std::cout << Text << "\n";
    return 0;
  }

  if (ListRules) {
    for (const auto &R : allRules())
      std::cout << R->name() << "\n    " << R->description() << "\n";
    for (const GraphRuleInfo &R : graphRules())
      std::cout << R.Name << " (graph)\n    " << R.Description << "\n";
    return 0;
  }

  RunResult R = runLint(Options);

  if (Options.WriteBaseline) {
    namespace fs = std::filesystem;
    fs::path BasePath = Options.BaselinePath.empty()
                            ? fs::path(Options.Root) / "tools" / "lint" /
                                  "baseline.txt"
                            : fs::path(Options.BaselinePath);
    std::ofstream Out(BasePath, std::ios::binary | std::ios::trunc);
    if (!Out) {
      std::cerr << "regmon-lint: error: cannot write "
                << BasePath.generic_string() << "\n";
      return 2;
    }
    Out << Baseline::render(R.Diags);
    std::cerr << "regmon-lint: wrote " << R.Diags.size() << " entr"
              << (R.Diags.size() == 1 ? "y" : "ies") << " to "
              << BasePath.generic_string() << "\n";
    return R.Errors.empty() ? 0 : 2;
  }

  if (!GraphFormat.empty() && R.Graph) {
    // Graph on stdout (the CI artifact), report on stderr.
    if (GraphFormat == "dot")
      R.Graph->dumpDot(std::cout);
    else
      R.Graph->dumpJson(std::cout);
    printHuman(R, std::cerr);
    return exitCode(R);
  }

  if (Options.Json)
    printJson(R, std::cout);
  else
    printHuman(R, std::cerr);
  return exitCode(R);
}
