//===- tools/lint/Parser.h - Declaration parser for the graph ---*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight declaration parser on top of the Lexer's token stream.
/// It recovers just enough structure for the cross-TU call graph: which
/// functions and methods a file defines (with their enclosing namespace /
/// class and annotation tags), which classes it declares and what they
/// derive from, which file-scope mutable variables exist, and which repo
/// headers it includes. It is *not* a C++ front end: function bodies are
/// treated as opaque token ranges (Effects.cpp scans them), templates are
/// skipped structurally, and anything it cannot classify degrades to "no
/// symbol recorded" rather than a wrong one.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TOOLS_LINT_PARSER_H
#define REGMON_TOOLS_LINT_PARSER_H

#include "Lint.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace regmon::lint {

/// One function or method declaration/definition found in a file.
struct ParsedFunction {
  std::string Name;      ///< last component, e.g. "observeInterval"
  std::string ClassName; ///< enclosing or explicitly qualified class; ""
                         ///< for free functions
  std::string Scope;     ///< namespace scope at the declaration ("a::b")
  bool Hot = false;      ///< tagged REGMON_HOT
  bool Pure = false;     ///< tagged REGMON_PURE
  bool Internal = false; ///< internal linkage (static / anonymous ns)
  bool HasBody = false;
  std::size_t BodyBegin = 0; ///< token index of the body's `{`
  std::size_t BodyEnd = 0;   ///< one past the matching `}`
  int Line = 0;
};

/// Everything the call-graph pass needs from one file.
struct ParsedFile {
  std::vector<ParsedFunction> Functions;
  /// Classes/structs *defined* in this file (name -> base-class names,
  /// unqualified; empty vector when the class has no bases).
  std::map<std::string, std::vector<std::string>> Classes;
  /// File-scope mutable variables (namespace scope, not const/constexpr).
  std::set<std::string> MutableGlobals;
  /// Every identifier token in the file — the cheap visibility proxy the
  /// resolver uses to decide which classes a file "knows about".
  std::set<std::string> Identifiers;
  /// Quoted #include paths as written (e.g. "core/RegionMonitor.h").
  std::vector<std::string> Includes;
};

/// Parses \p FC's token stream. Never fails; unparseable constructs are
/// skipped.
ParsedFile parseFile(const FileContext &FC);

} // namespace regmon::lint

#endif // REGMON_TOOLS_LINT_PARSER_H
