//===- tools/lint/Parser.cpp - Declaration parser for the graph -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A structural walker over the Lexer's token stream. It maintains a scope
// stack (namespaces, class bodies, plain blocks) and never descends into
// function bodies — a body is balanced-brace-skipped and recorded as an
// opaque token range for Effects.cpp. Annotation macros (REGMON_HOT,
// REGMON_PURE) and `static` are collected as pending flags that attach to
// the next declaration.
//
// The walker is deliberately conservative: when a construct does not match
// any of its shapes it advances one token and keeps going, so the worst
// failure mode is a missing symbol, not a malformed one.
//
//===----------------------------------------------------------------------===//

#include "Parser.h"

#include "TokenUtil.h"

namespace regmon::lint {
namespace {

class Walker {
public:
  explicit Walker(const FileContext &Ctx) : FC(Ctx), T(Ctx.Tokens) {}

  ParsedFile run() {
    for (const Token &Tok : T)
      if (Tok.Kind == TokenKind::Identifier)
        Out.Identifiers.insert(Tok.Text);
    std::size_t I = 0;
    while (I < T.size())
      I = step(I);
    return std::move(Out);
  }

private:
  struct Scope {
    enum Kind { Ns, Class, Block } K;
    std::string Name;
    bool Anonymous = false;
  };

  const FileContext &FC;
  const std::vector<Token> &T;
  ParsedFile Out;
  std::vector<Scope> Scopes;
  bool PendingHot = false;
  bool PendingPure = false;
  bool PendingStatic = false;

  void clearPending() { PendingHot = PendingPure = PendingStatic = false; }

  bool inClass() const {
    return !Scopes.empty() && Scopes.back().K == Scope::Class;
  }

  bool inAnonymousNs() const {
    for (const Scope &S : Scopes)
      if (S.Anonymous)
        return true;
    return false;
  }

  std::string nsScope() const {
    std::string Path;
    for (const Scope &S : Scopes)
      if (S.K == Scope::Ns && !S.Anonymous && !S.Name.empty()) {
        if (!Path.empty())
          Path += "::";
        Path += S.Name;
      }
    return Path;
  }

  std::string enclosingClass() const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      if (It->K == Scope::Class)
        return It->Name;
    return {};
  }

  /// Skips to one past the `;` terminating the current statement,
  /// balancing (), [] and {} (initializer lists, lambdas) on the way.
  std::size_t skipToSemi(std::size_t I) const {
    while (I < T.size()) {
      if (isPunct(T[I], "("))
        I = skipBalanced(T, I, "(", ")");
      else if (isPunct(T[I], "["))
        I = skipBalanced(T, I, "[", "]");
      else if (isPunct(T[I], "{"))
        I = skipBalanced(T, I, "{", "}");
      else if (isPunct(T[I], ";"))
        return I + 1;
      else
        ++I;
    }
    return T.size();
  }

  /// One dispatch step of the top-level walk. Returns the resume index.
  std::size_t step(std::size_t I) {
    const Token &Tok = T[I];
    if (Tok.Kind == TokenKind::Directive) {
      recordInclude(Tok.Text);
      return I + 1;
    }
    if (Tok.Kind == TokenKind::Literal)
      return I + 1;
    if (Tok.Kind == TokenKind::Punct) {
      if (Tok.Text == "{") {
        Scopes.push_back({Scope::Block, "", false});
        return I + 1;
      }
      if (Tok.Text == "}") {
        if (!Scopes.empty())
          Scopes.pop_back();
        return I + 1;
      }
      if (Tok.Text == ";")
        clearPending();
      return I + 1;
    }
    const std::string &S = Tok.Text;
    if (S == "namespace")
      return parseNamespace(I);
    if (S == "class" || S == "struct" || S == "union")
      return parseClass(I);
    if (S == "enum")
      return parseEnum(I);
    if (S == "using" || S == "typedef" || S == "friend" ||
        S == "static_assert") {
      clearPending();
      return skipToSemi(I);
    }
    if (S == "template") {
      if (nextIs(T, I, "<"))
        return skipBalanced(T, I + 1, "<", ">");
      return I + 1;
    }
    if (S == "REGMON_HOT") {
      PendingHot = true;
      return I + 1;
    }
    if (S == "REGMON_PURE") {
      PendingPure = true;
      return I + 1;
    }
    if (S == "static") {
      PendingStatic = true;
      return I + 1;
    }
    if (S == "extern" || S == "inline" || S == "virtual" ||
        S == "explicit" || S == "public" || S == "protected" ||
        S == "private")
      return I + 1;
    return parseDeclaration(I);
  }

  void recordInclude(const std::string &Text) {
    std::size_t At = Text.find("include");
    if (At == std::string::npos)
      return;
    std::size_t Open = Text.find('"', At);
    if (Open == std::string::npos)
      return;
    std::size_t Close = Text.find('"', Open + 1);
    if (Close == std::string::npos)
      return;
    Out.Includes.push_back(Text.substr(Open + 1, Close - Open - 1));
  }

  std::size_t parseNamespace(std::size_t I) {
    std::size_t J = I + 1;
    std::string Name;
    while (J < T.size() &&
           (T[J].Kind == TokenKind::Identifier || isPunct(T[J], "::"))) {
      if (T[J].Kind == TokenKind::Identifier) {
        if (!Name.empty())
          Name += "::";
        Name += T[J].Text;
      }
      ++J;
    }
    if (J < T.size() && isPunct(T[J], "{")) {
      Scopes.push_back({Scope::Ns, Name, Name.empty()});
      return J + 1;
    }
    // namespace alias (`namespace a = b::c;`) or malformed: statement off
    return skipToSemi(J);
  }

  std::size_t parseClass(std::size_t I) {
    std::size_t J = I + 1;
    std::string Name;
    while (J < T.size()) {
      if (isPunct(T[J], "[")) {
        J = skipBalanced(T, J, "[", "]"); // [[attributes]]
        continue;
      }
      if (T[J].Kind == TokenKind::Identifier && T[J].Text != "final" &&
          T[J].Text != "alignas") {
        if (Name.empty()) {
          Name = T[J].Text;
          ++J;
          continue;
        }
      }
      break;
    }
    // Find the defining `{`; a `;` first means forward declaration or an
    // elaborated-type variable (`struct tm Buf;`) — either way, no scope.
    std::size_t ColonAt = 0;
    std::size_t K = J;
    while (K < T.size()) {
      if (isPunct(T[K], "<")) {
        K = skipBalanced(T, K, "<", ">");
        continue;
      }
      if (isPunct(T[K], "(")) {
        K = skipBalanced(T, K, "(", ")");
        continue;
      }
      if (isPunct(T[K], ";")) {
        clearPending();
        return K + 1;
      }
      if (isPunct(T[K], "{"))
        break;
      if (isPunct(T[K], ":") && ColonAt == 0)
        ColonAt = K;
      ++K;
    }
    if (K >= T.size())
      return T.size();
    std::vector<std::string> Bases;
    if (ColonAt != 0) {
      std::string Last;
      for (std::size_t B = ColonAt + 1; B < K; ++B) {
        if (isPunct(T[B], "<")) {
          B = skipBalanced(T, B, "<", ">") - 1;
          continue;
        }
        if (T[B].Kind == TokenKind::Identifier &&
            !oneOf(T[B].Text, {"public", "protected", "private", "virtual"}))
          Last = T[B].Text;
        if (isPunct(T[B], ",") && !Last.empty()) {
          Bases.push_back(Last);
          Last.clear();
        }
      }
      if (!Last.empty())
        Bases.push_back(Last);
    }
    if (!Name.empty())
      Out.Classes[Name] = Bases;
    Scopes.push_back({Scope::Class, Name, false});
    clearPending();
    return K + 1;
  }

  std::size_t parseEnum(std::size_t I) {
    std::size_t J = I + 1;
    while (J < T.size() && !isPunct(T[J], "{") && !isPunct(T[J], ";"))
      ++J;
    if (J < T.size() && isPunct(T[J], "{"))
      J = skipBalanced(T, J, "{", "}");
    clearPending();
    return J; // trailing `;` handled by the main loop
  }

  void recordVariable(const std::string &Name, bool Const) {
    if (Name.empty() || Const)
      return;
    for (const Scope &S : Scopes)
      if (S.K != Scope::Ns)
        return; // class members and block locals are not globals
    Out.MutableGlobals.insert(Name);
  }

  /// A declaration that is not introduced by a structural keyword: a
  /// variable, a function, or noise. Scans forward collecting qualifiers
  /// until the shape resolves.
  std::size_t parseDeclaration(std::size_t Start) {
    std::size_t I = Start;
    bool Const = false;
    std::string LastIdent;
    while (I < T.size()) {
      const Token &Tok = T[I];
      if (Tok.Kind == TokenKind::Directive || Tok.Kind == TokenKind::Literal) {
        ++I;
        continue;
      }
      if (Tok.Kind == TokenKind::Identifier) {
        const std::string &S = Tok.Text;
        if (S == "const" || S == "constexpr" || S == "constinit")
          Const = true;
        else if (S == "REGMON_HOT")
          PendingHot = true;
        else if (S == "REGMON_PURE")
          PendingPure = true;
        else if (S == "static")
          PendingStatic = true;
        else
          LastIdent = S;
        ++I;
        continue;
      }
      const std::string &P = Tok.Text;
      if (P == "<") {
        I = skipBalanced(T, I, "<", ">");
        continue;
      }
      if (P == "[") {
        I = skipBalanced(T, I, "[", "]");
        continue;
      }
      if (P == "(") {
        if (std::size_t Next = tryFunction(I))
          return Next;
        I = skipBalanced(T, I, "(", ")");
        continue;
      }
      if (P == ";") {
        recordVariable(LastIdent, Const);
        clearPending();
        return I + 1;
      }
      if (P == "=") {
        recordVariable(LastIdent, Const);
        clearPending();
        return skipToSemi(I);
      }
      if (P == "{") {
        // Brace initializer on a variable (`Foo X{1};`).
        recordVariable(LastIdent, Const);
        clearPending();
        return skipToSemi(I);
      }
      ++I;
    }
    clearPending();
    return T.size();
  }

  /// Member-initializer list scan: after the ctor's `:`, a `{` preceded by
  /// an identifier or `>` is a member brace-init (`Field{...}`); a `{`
  /// preceded by `)` or `}` (or `,`... impossible) opens the body.
  std::size_t findCtorBody(std::size_t J) const {
    while (J < T.size()) {
      if (isPunct(T[J], "(")) {
        J = skipBalanced(T, J, "(", ")");
        continue;
      }
      if (isPunct(T[J], "<")) {
        J = skipBalanced(T, J, "<", ">");
        continue;
      }
      if (isPunct(T[J], "{")) {
        if (J > 0 && (T[J - 1].Kind == TokenKind::Identifier ||
                      isPunct(T[J - 1], ">"))) {
          J = skipBalanced(T, J, "{", "}");
          continue;
        }
        return J;
      }
      if (isPunct(T[J], ";"))
        return 0; // lost: not a ctor-init after all
      ++J;
    }
    return 0;
  }

  /// Called when parseDeclaration meets `(`. Decides whether the tokens
  /// before it name a function declarator; if so consumes the whole
  /// declaration (or definition) and returns the resume index, else 0.
  std::size_t tryFunction(std::size_t OpenParen) {
    if (OpenParen == 0)
      return 0;
    std::string Name;
    std::size_t Back; // index of the first token of the name
    const Token &Prev = T[OpenParen - 1];
    if (Prev.Kind == TokenKind::Identifier) {
      Name = Prev.Text;
      Back = OpenParen - 1;
    } else if (Prev.Kind == TokenKind::Punct && OpenParen >= 2 &&
               isId(T[OpenParen - 2], "operator")) {
      Name = "operator" + Prev.Text;
      Back = OpenParen - 2;
    } else {
      return 0; // `)(`, `](` etc: an expression, not a declarator
    }
    if (oneOf(Name, {"if", "for", "while", "switch", "catch", "return",
                     "sizeof", "alignof", "noexcept", "decltype", "assert",
                     "throw", "new", "delete"}))
      return 0;
    if (Back >= 1 && isPunct(T[Back - 1], "~")) {
      Name = "~" + Name;
      --Back;
    }
    std::vector<std::string> Quals;
    while (Back >= 2 && isPunct(T[Back - 1], "::") &&
           T[Back - 2].Kind == TokenKind::Identifier) {
      Quals.insert(Quals.begin(), T[Back - 2].Text);
      Back -= 2;
    }

    std::size_t AfterParams = skipBalanced(T, OpenParen, "(", ")");

    // Scan the declarator trailer: `const noexcept(...) override -> T` up
    // to `{` (definition), `;` (declaration), `=` (default/delete/pure),
    // or `:` (ctor-init list). Anything else means "not one function".
    std::size_t J = AfterParams;
    std::size_t BodyAt = 0;
    std::size_t Resume = 0;
    bool IsDecl = false;
    while (J < T.size()) {
      const Token &Tk = T[J];
      if (Tk.Kind == TokenKind::Identifier) {
        if (Tk.Text == "noexcept" && nextIs(T, J, "(")) {
          J = skipBalanced(T, J + 1, "(", ")");
          continue;
        }
        ++J;
        continue;
      }
      if (Tk.Kind != TokenKind::Punct) {
        ++J;
        continue;
      }
      const std::string &P = Tk.Text;
      if (P == "->" || P == "::" || P == "&" || P == "&&" || P == "*") {
        ++J;
        continue;
      }
      if (P == "<") {
        J = skipBalanced(T, J, "<", ">");
        continue;
      }
      if (P == "[") {
        J = skipBalanced(T, J, "[", "]");
        continue;
      }
      if (P == "(") {
        J = skipBalanced(T, J, "(", ")");
        continue;
      }
      if (P == ";") {
        IsDecl = true;
        Resume = J + 1;
        break;
      }
      if (P == "=") {
        IsDecl = true; // `= default;` / `= delete;` / `= 0;`
        Resume = skipToSemi(J);
        break;
      }
      if (P == ":") {
        BodyAt = findCtorBody(J + 1);
        break;
      }
      if (P == "{") {
        BodyAt = J;
        break;
      }
      return 0; // `,` (multi-declarator / expression) and the rest
    }
    if (J >= T.size())
      return 0;
    if (!IsDecl && (BodyAt == 0 || !isPunct(T[BodyAt], "{")))
      return 0;

    ParsedFunction F;
    F.Name = Name;
    F.Scope = nsScope();
    F.Line = T[Back].Line;
    F.Hot = PendingHot;
    F.Pure = PendingPure;
    if (!Quals.empty())
      F.ClassName = Quals.back(); // may be a namespace; the graph demotes
    else
      F.ClassName = enclosingClass();
    F.Internal =
        inAnonymousNs() || (PendingStatic && !inClass() && Quals.empty());
    clearPending();
    if (IsDecl) {
      Out.Functions.push_back(std::move(F));
      return Resume;
    }
    F.HasBody = true;
    F.BodyBegin = BodyAt;
    F.BodyEnd = skipBalanced(T, BodyAt, "{", "}");
    std::size_t End = F.BodyEnd;
    Out.Functions.push_back(std::move(F));
    return End;
  }
};

} // namespace

ParsedFile parseFile(const FileContext &FC) { return Walker(FC).run(); }

} // namespace regmon::lint
