//===- tools/lint/Driver.cpp - Tree walk, reporting, exit codes -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Driver.h"

#include "Baseline.h"
#include "CallGraph.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace fs = std::filesystem;

namespace regmon::lint {

namespace {

bool isSourceFile(const fs::path &P) {
  std::string Ext = P.extension().string();
  return Ext == ".h" || Ext == ".hpp" || Ext == ".hh" || Ext == ".cpp" ||
         Ext == ".cc" || Ext == ".cxx";
}

/// Returns P relative to Root with forward slashes; falls back to P as
/// spelled when it is not under Root.
std::string relPath(const fs::path &P, const fs::path &Root) {
  std::error_code EC;
  fs::path Rel = fs::relative(P, Root, EC);
  fs::path Use = (EC || Rel.empty() || *Rel.begin() == "..") ? P : Rel;
  return Use.generic_string();
}

bool readFile(const fs::path &P, std::string &Out, std::string &Error) {
  std::ifstream In(P, std::ios::binary);
  if (!In) {
    Error = "cannot open " + P.generic_string();
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void jsonEscape(std::ostream &OS, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char *Hex = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xf] << Hex[C & 0xf];
      } else {
        OS << C;
      }
    }
  }
}

} // namespace

RunResult runLint(const DriverOptions &Options) {
  RunResult R;
  fs::path Root = Options.Root;

  std::vector<std::string> Paths = Options.Paths;
  if (Paths.empty())
    Paths = {"src", "tools", "bench"};

  // Gather files, sorted for reproducible reports and baselines.
  std::vector<fs::path> Files;
  for (const std::string &P : Paths) {
    fs::path Abs = Root / P;
    std::error_code EC;
    if (fs::is_directory(Abs, EC)) {
      for (fs::recursive_directory_iterator
               It(Abs, fs::directory_options::skip_permission_denied, EC),
           End;
           It != End; It.increment(EC)) {
        if (EC)
          break;
        if (It->is_regular_file(EC) && isSourceFile(It->path()))
          Files.push_back(It->path());
      }
    } else if (fs::is_regular_file(Abs, EC)) {
      Files.push_back(Abs);
    } else {
      R.Errors.push_back("no such file or directory: " + Abs.generic_string());
    }
  }
  std::sort(Files.begin(), Files.end());
  Files.erase(std::unique(Files.begin(), Files.end()), Files.end());

  // Lex everything first: the per-file rules consume one context at a
  // time, but the call-graph pass needs the whole set at once.
  std::vector<FileContext> Contexts;
  Contexts.reserve(Files.size());
  for (const fs::path &File : Files) {
    std::string Source, Error;
    if (!readFile(File, Source, Error)) {
      R.Errors.push_back(Error);
      continue;
    }
    ++R.FilesScanned;
    Contexts.push_back(buildContext(relPath(File, Root), Source));
  }

  for (const FileContext &FC : Contexts) {
    std::vector<Diagnostic> Diags = runRules(FC);
    R.Diags.insert(R.Diags.end(), Diags.begin(), Diags.end());
  }

  auto Graph = std::make_shared<CallGraph>(CallGraph::build(Contexts));
  std::vector<Diagnostic> GraphDiags = runGraphRules(*Graph, Contexts);
  R.Diags.insert(R.Diags.end(), GraphDiags.begin(), GraphDiags.end());
  R.Graph = std::move(Graph);

  std::stable_sort(R.Diags.begin(), R.Diags.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Path != B.Path)
                       return A.Path < B.Path;
                     if (A.Line != B.Line)
                       return A.Line < B.Line;
                     return A.Rule < B.Rule;
                   });

  if (Options.UseBaseline && !Options.WriteBaseline) {
    fs::path BasePath = Options.BaselinePath.empty()
                            ? Root / "tools" / "lint" / "baseline.txt"
                            : fs::path(Options.BaselinePath);
    std::error_code EC;
    if (fs::is_regular_file(BasePath, EC)) {
      std::string Text, Error;
      if (!readFile(BasePath, Text, Error)) {
        R.Errors.push_back(Error);
      } else {
        Baseline B = Baseline::parse(Text);
        for (const std::string &E : B.errors())
          R.Errors.push_back(BasePath.generic_string() + ": " + E);
        B.apply(R.Diags);
        R.Stale = B.unconsumed();
      }
    } else if (!Options.BaselinePath.empty()) {
      R.Errors.push_back("baseline not found: " + BasePath.generic_string());
    }
  }

  // --check-baseline: a suppression whose violation no longer exists must
  // be deleted, or the baseline rots into a list of free passes.
  if (Options.CheckBaseline)
    for (const std::string &S : R.Stale)
      R.Errors.push_back("stale baseline entry (--check-baseline): " + S);

  for (const Diagnostic &D : R.Diags)
    D.Baselined ? ++R.BaselinedCount : ++R.NewCount;
  return R;
}

void printHuman(const RunResult &R, std::ostream &OS) {
  for (const std::string &E : R.Errors)
    OS << "regmon-lint: error: " << E << "\n";
  for (const Diagnostic &D : R.Diags) {
    if (D.Baselined)
      continue;
    OS << D.Path << ":" << D.Line << ": error: " << D.Message << " ["
       << D.Rule << "]\n";
    if (!D.Snippet.empty())
      OS << "    " << D.Snippet << "\n";
  }
  for (const std::string &S : R.Stale)
    OS << "regmon-lint: warning: stale baseline entry (violation no longer "
          "present): "
       << S << "\n";
  OS << "regmon-lint: " << R.FilesScanned << " files, " << R.NewCount
     << " new violation" << (R.NewCount == 1 ? "" : "s") << ", "
     << R.BaselinedCount << " baselined\n";
}

void printJson(const RunResult &R, std::ostream &OS) {
  OS << "{\n  \"version\": 1,\n  \"files_scanned\": " << R.FilesScanned
     << ",\n  \"new\": " << R.NewCount
     << ",\n  \"baselined\": " << R.BaselinedCount << ",\n  \"errors\": [";
  for (std::size_t I = 0; I < R.Errors.size(); ++I) {
    OS << (I ? ", " : "") << "\"";
    jsonEscape(OS, R.Errors[I]);
    OS << "\"";
  }
  OS << "],\n  \"stale_baseline\": [";
  for (std::size_t I = 0; I < R.Stale.size(); ++I) {
    OS << (I ? ", " : "") << "\"";
    jsonEscape(OS, R.Stale[I]);
    OS << "\"";
  }
  OS << "],\n  \"diagnostics\": [";
  bool First = true;
  for (const Diagnostic &D : R.Diags) {
    OS << (First ? "" : ",") << "\n    {\"rule\": \"";
    jsonEscape(OS, D.Rule);
    OS << "\", \"file\": \"";
    jsonEscape(OS, D.Path);
    OS << "\", \"line\": " << D.Line << ", \"baselined\": "
       << (D.Baselined ? "true" : "false") << ", \"message\": \"";
    jsonEscape(OS, D.Message);
    OS << "\", \"snippet\": \"";
    jsonEscape(OS, D.Snippet);
    OS << "\"}";
    First = false;
  }
  OS << "\n  ]\n}\n";
}

int exitCode(const RunResult &R) {
  if (!R.Errors.empty())
    return 2;
  return R.NewCount == 0 ? 0 : 1;
}

} // namespace regmon::lint
