#!/usr/bin/env bash
#===- tools/run_clang_tidy.sh - clang-tidy sweep -------------------------===#
#
# Part of the regmon project. Distributed under the MIT license.
#
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# and tool sources using a compile_commands.json exported into
# build-tidy/. Degrades gracefully: when clang-tidy is not installed the
# script prints a notice and exits 0, so CI images and dev machines
# without LLVM tooling are not blocked.
#
# usage: tools/run_clang_tidy.sh [extra clang-tidy args...]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found; skipping (install LLVM" \
       "tooling to enable this check)"
  exit 0
fi

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== clang-tidy: exporting compile commands into build-tidy/ ==="
cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# Library, tool and bench translation units; tests are gtest-macro-heavy
# and mostly exercise clang-tidy's false-positive corners, so they are
# linted by regmon-lint and the compiler only.
mapfile -t files < <(find src tools bench -name '*.cpp' | sort)

echo "=== clang-tidy: checking ${#files[@]} files ==="
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p build-tidy -j "$jobs" "$@" "${files[@]}"
else
  clang-tidy -quiet -p build-tidy "$@" "${files[@]}"
fi
echo "=== clang-tidy: OK ==="
