//===- examples/quickstart.cpp - Minimal region-monitoring walkthrough ----===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The five-minute tour: build a tiny two-loop program whose bottleneck
// shifts halfway through, sample it, and watch the region monitor (a) form
// regions from unmonitored samples and (b) flag the *local* phase change
// that global phase detection cannot attribute to a region.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"
#include "gpd/CentroidPhaseDetector.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace regmon;

int main() {
  // A ready-made toy: one loop whose hot instruction moves one slot to the
  // right halfway through the run (the paper's Fig. 8 scenario).
  workloads::Workload W = workloads::make("synthetic.bottleneck");

  sim::Engine Engine(W.Prog, W.Script, /*Seed=*/42);
  sampling::Sampler Sampler(Engine, {.PeriodCycles = 45'000,
                                     .BufferSize = 2032});

  // The paper's system: region monitoring with per-region phase detection.
  sim::ProgramCodeMap Map(W.Prog);
  core::RegionMonitorConfig MonitorCfg;
  MonitorCfg.RecordTimelines = true;
  core::RegionMonitor Monitor(Map, MonitorCfg);

  // The baseline it replaces: one global centroid detector.
  gpd::CentroidPhaseDetector Global;

  Monitor.setEventHandler([&](const core::RegionEvent &E) {
    const core::Region &R = Monitor.regions()[E.Id];
    const char *What = "";
    switch (E.K) {
    case core::RegionEvent::Kind::Formed:
      What = "formed";
      break;
    case core::RegionEvent::Kind::BecameStable:
      What = "became locally STABLE";
      break;
    case core::RegionEvent::Kind::BecameUnstable:
      What = "became locally UNSTABLE (local phase change!)";
      break;
    case core::RegionEvent::Kind::Pruned:
      What = "pruned";
      break;
    case core::RegionEvent::Kind::MissPhaseChange:
      What = "changed miss behaviour";
      break;
    }
    std::printf("  interval %4llu: region %s %s\n",
                static_cast<unsigned long long>(E.Interval),
                R.Name.c_str(), What);
  });

  std::printf("sampling %s every 45K cycles...\n", W.Prog.name().c_str());
  Sampler.run([&](std::span<const Sample> Buffer) {
    Monitor.observeInterval(Buffer);
    Global.observeInterval(Buffer);
  });

  std::printf("\n--- results after %llu intervals ---\n",
              static_cast<unsigned long long>(Monitor.intervals()));
  std::printf("global (centroid) detector: %llu phase changes, "
              "%.0f%% of time stable\n",
              static_cast<unsigned long long>(Global.phaseChanges()),
              Global.stableFraction() * 100.0);
  for (core::RegionId Id : Monitor.activeRegionIds()) {
    const core::Region &R = Monitor.regions()[Id];
    const core::RegionStats &S = Monitor.stats(Id);
    std::printf("region %-12s: %llu local phase changes, "
                "%.0f%% of lifetime locally stable, last r = %.3f\n",
                R.Name.c_str(),
                static_cast<unsigned long long>(S.PhaseChanges),
                S.stableFraction() * 100.0, Monitor.detector(Id).lastR());
  }
  std::printf("\nThe bottleneck shift is invisible to the working-set view "
              "(same loop is hot)\nbut the region's Pearson r collapses at "
              "the shift: that is local phase detection.\n");
  return 0;
}
