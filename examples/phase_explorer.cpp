//===- examples/phase_explorer.cpp - Inspect any workload's phases --------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runs one workload under both detectors and prints everything the paper's
// region charts show: the per-region sample timeline (stacked ASCII chart),
// the GPD phase overlay, UCR statistics, and per-region LPD summaries.
//
//   $ ./phase_explorer                      # list workloads
//   $ ./phase_explorer 181.mcf              # default 45K cycles/interrupt
//   $ ./phase_explorer 187.facerec 450000   # explicit sampling period
//
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"
#include "gpd/CentroidPhaseDetector.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/AsciiChart.h"
#include "support/Statistics.h"
#include "support/TextTable.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace regmon;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::printf("usage: %s <workload> [period_cycles]\n\nworkloads:\n",
                Argv[0]);
    for (const std::string &Name : workloads::allNames())
      std::printf("  %s\n", Name.c_str());
    return 1;
  }
  const std::string Name = Argv[1];
  if (!workloads::exists(Name)) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 1;
  }
  const Cycles Period =
      Argc > 2 ? static_cast<Cycles>(std::strtoull(Argv[2], nullptr, 10))
               : 45'000;

  workloads::Workload W = workloads::make(Name);
  sim::Engine Engine(W.Prog, W.Script, /*Seed=*/1);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  sim::ProgramCodeMap Map(W.Prog);

  core::RegionMonitorConfig MonitorCfg;
  MonitorCfg.RecordTimelines = true;
  core::RegionMonitor Monitor(Map, MonitorCfg);
  gpd::CentroidPhaseDetector Global;

  Sampler.run([&](std::span<const Sample> Buffer) {
    Monitor.observeInterval(Buffer);
    Global.observeInterval(Buffer);
  });

  const auto Intervals = Monitor.intervals();
  std::printf("%s @ %llu cycles/interrupt: %llu intervals\n\n",
              Name.c_str(), static_cast<unsigned long long>(Period),
              static_cast<unsigned long long>(Intervals));

  // --- Global phase detection summary -----------------------------------
  std::printf("GPD (centroid): %llu phase changes, %.1f%% stable\n",
              static_cast<unsigned long long>(Global.phaseChanges()),
              Global.stableFraction() * 100.0);

  // --- UCR ----------------------------------------------------------------
  std::vector<double> Ucr(Monitor.ucrHistory().begin(),
                          Monitor.ucrHistory().end());
  std::printf("UCR: median %.1f%%, formation triggers %llu\n\n",
              median(Ucr) * 100.0,
              static_cast<unsigned long long>(Monitor.formationTriggers()));

  // --- Region chart (Figs. 2/5/9 style) ----------------------------------
  // Downsample timelines to <= 96 columns for terminal display.
  const std::vector<core::RegionId> Ids = Monitor.activeRegionIds();
  const std::size_t Columns = std::min<std::size_t>(96, Intervals);
  if (Columns > 0 && !Ids.empty()) {
    StackedChart Chart(14);
    auto Bucket = [&](std::size_t Col) {
      return Col * Intervals / Columns;
    };
    for (core::RegionId Id : Ids) {
      const core::Region &R = Monitor.regions()[Id];
      std::span<const std::uint32_t> Line = Monitor.sampleTimeline(Id);
      const std::uint64_t Offset = R.FormedAtInterval;
      std::vector<double> Cells(Columns, 0);
      for (std::size_t Col = 0; Col < Columns; ++Col) {
        const std::size_t Lo = Bucket(Col), Hi = Bucket(Col + 1);
        double Acc = 0;
        std::size_t N = 0;
        for (std::size_t I = Lo; I < std::max(Hi, Lo + 1); ++I) {
          if (I < Offset || I - Offset >= Line.size())
            continue;
          Acc += Line[I - Offset];
          ++N;
        }
        Cells[Col] = N ? Acc / static_cast<double>(N) : 0;
      }
      Chart.addSeries(R.Name, std::move(Cells));
    }
    std::vector<bool> UnstableFlags(Columns, false);
    std::span<const gpd::GlobalPhaseState> Timeline = Global.timeline();
    for (std::size_t Col = 0; Col < Columns; ++Col) {
      const std::size_t Lo = Bucket(Col), Hi = Bucket(Col + 1);
      for (std::size_t I = Lo; I < std::max(Hi, Lo + 1) &&
                               I < Timeline.size();
           ++I)
        if (Timeline[I] != gpd::GlobalPhaseState::Stable)
          UnstableFlags[Col] = true;
    }
    Chart.setOverlay("GPD phase unstable", std::move(UnstableFlags));
    std::printf("region chart (samples per interval, stacked):\n%s\n",
                Chart.render().c_str());
  }

  // --- Per-region LPD summary (Figs. 13/14 style) -------------------------
  TextTable Table;
  Table.header({"region", "formed@", "samples", "local changes",
                "% stable", "last r"});
  for (core::RegionId Id : Ids) {
    const core::Region &R = Monitor.regions()[Id];
    const core::RegionStats &S = Monitor.stats(Id);
    Table.row({R.Name, TextTable::count(R.FormedAtInterval),
               TextTable::count(S.TotalSamples),
               TextTable::count(S.PhaseChanges),
               TextTable::percent(S.stableFraction()),
               TextTable::num(Monitor.detector(Id).lastR(), 3)});
  }
  std::printf("%s", Table.render().c_str());

  // --- Pearson r timelines (Figs. 10/11 style) ----------------------------
  std::printf("\nPearson r over time (sparklines, scale -0.2..1):\n");
  for (core::RegionId Id : Ids) {
    const core::Region &R = Monitor.regions()[Id];
    std::span<const double> RLine = Monitor.rTimeline(Id);
    std::vector<double> Cells;
    const std::size_t Cols = std::min<std::size_t>(72, RLine.size());
    for (std::size_t Col = 0; Col < Cols; ++Col)
      Cells.push_back(RLine[Col * RLine.size() / Cols]);
    std::printf("  %-14s |%s|\n", R.Name.c_str(),
                sparkline(Cells, -0.2, 1.0).c_str());
  }
  return 0;
}
