//===- examples/delinquent_loads.cpp - Region performance profiles --------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The optimizer's-eye view of a workload: for every monitored region,
// print its DPI (D-cache-miss samples per cycle sample), its top
// delinquent loads, and whether a prefetch trace would currently be worth
// deploying -- the "performance characteristics" half of the paper's
// abstract ("to detect change in performance characteristics that can
// affect optimization strategy").
//
//   $ ./delinquent_loads                 # defaults to 181.mcf
//   $ ./delinquent_loads 183.equake 450000
//
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/TextTable.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace regmon;

int main(int Argc, char **Argv) {
  const std::string Name = Argc > 1 ? Argv[1] : "181.mcf";
  if (!workloads::exists(Name)) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 1;
  }
  const Cycles Period =
      Argc > 2 ? static_cast<Cycles>(std::strtoull(Argv[2], nullptr, 10))
               : 45'000;

  workloads::Workload W = workloads::make(Name);
  sim::Engine Engine(W.Prog, W.Script, /*Seed=*/1);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  sim::ProgramCodeMap Map(W.Prog);
  core::RegionMonitor Monitor(Map);

  Sampler.run([&](std::span<const Sample> Buffer) {
    Monitor.observeInterval(Buffer);
  });

  std::printf("%s @ %llu cycles/interrupt: per-region performance "
              "characteristics\n\n",
              Name.c_str(), static_cast<unsigned long long>(Period));

  TextTable Table;
  Table.header({"region", "samples", "DPI", "recent DPI", "locally stable",
                "prefetch target?"});
  for (core::RegionId Id : Monitor.activeRegionIds()) {
    const core::Region &R = Monitor.regions()[Id];
    const core::RegionStats &S = Monitor.stats(Id);
    const bool Stable =
        Monitor.detector(Id).state() == core::LocalPhaseState::Stable;
    const bool Missy = S.missFraction() > 0.05;
    Table.row({R.Name, TextTable::count(S.TotalSamples),
               TextTable::percent(S.missFraction()),
               TextTable::percent(Monitor.recentMissFraction(Id)),
               Stable ? "yes" : "no",
               Stable && Missy ? "YES" : (Missy ? "unstable" : "no misses")});
  }
  std::printf("%s\n", Table.render().c_str());

  std::printf("top delinquent loads per region:\n");
  for (core::RegionId Id : Monitor.activeRegionIds()) {
    const core::Region &R = Monitor.regions()[Id];
    const auto Loads = Monitor.delinquentLoads(Id, 3);
    if (Loads.empty())
      continue;
    std::printf("  %-14s:", R.Name.c_str());
    for (const auto &Load : Loads)
      std::printf("  %llx (%llu misses)",
                  static_cast<unsigned long long>(Load.Pc),
                  static_cast<unsigned long long>(Load.Misses));
    std::printf("\n");
  }
  return 0;
}
