//===- examples/adaptive_optimizer.cpp - RTO-ORIG vs RTO-LPD --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end runtime-optimization demo: run a workload under the
// centroid-gated optimizer (RTO-ORIG) and the region-monitoring optimizer
// (RTO-LPD) at several sampling periods and report cycle counts, deployment
// activity and the LPD-over-ORIG speedup -- the paper's Fig. 17 experiment
// on one workload.
//
//   $ ./adaptive_optimizer                 # defaults to 181.mcf
//   $ ./adaptive_optimizer 254.gap
//
//===----------------------------------------------------------------------===//

#include "rto/Harness.h"
#include "support/TextTable.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace regmon;

int main(int Argc, char **Argv) {
  const std::string Name = Argc > 1 ? Argv[1] : "181.mcf";
  if (!workloads::exists(Name)) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 1;
  }
  const workloads::Workload W = workloads::make(Name);
  const rto::OptimizationModel Model = W.model();

  std::printf("runtime optimization on %s (identical program, two phase "
              "detectors)\n\n",
              Name.c_str());

  TextTable Table;
  Table.header({"period", "cycles ORIG", "cycles LPD", "stable% ORIG",
                "stable% LPD", "patches O/L", "LPD speedup"});

  for (const Cycles Period : {100'000u, 800'000u, 1'500'000u}) {
    rto::RtoConfig Config;
    Config.Sampling.PeriodCycles = Period;

    const rto::RtoResult Orig =
        rto::runOriginal(W.Prog, W.Script, Model, /*Seed=*/7, Config);
    const rto::RtoResult Lpd =
        rto::runLocal(W.Prog, W.Script, Model, /*Seed=*/7, Config);

    Table.row({TextTable::count(Period), TextTable::count(Orig.TotalCycles),
               TextTable::count(Lpd.TotalCycles),
               TextTable::percent(Orig.StableFraction),
               TextTable::percent(Lpd.StableFraction),
               TextTable::count(Orig.Patches) + "/" +
                   TextTable::count(Lpd.Patches),
               TextTable::percent(rto::speedupPercent(Orig, Lpd) / 100.0,
                                  2)});
  }
  std::printf("%s", Table.render().c_str());

  rto::RtoConfig Config;
  const rto::RtoResult Base =
      rto::runUnoptimized(W.Prog, W.Script, /*Seed=*/7, Config);
  std::printf("\nunoptimized execution: %llu cycles (== %.0f work units)\n",
              static_cast<unsigned long long>(Base.TotalCycles),
              Base.TotalWork);
  return 0;
}
